// The distributed-memory substrate: asynchronously composed sequential
// processes with synchronous (rendezvous) channels — the execution model
// of Sect. 4, substituting for the paper's transputer networks.
//
// Processes are C++20 coroutines driven by a deterministic cooperative
// scheduler (FIFO ready queue). A logical clock assigns every rendezvous
// max(t_sender, t_receiver) + 1 and every basic statement +1, so the final
// maximum over all processes is the parallel makespan in systolic steps.
//
// The scheduler additionally counts cooperative *rounds* (one round =
// draining the ready entries present at round start). Rounds are the time
// base of the robustness layer: fault injection (runtime/faults) stalls
// processes and delays transfers in rounds, and the watchdog
// (runtime/watchdog) bounds rounds and per-process blocked time. Logical
// clocks are driven purely by the dataflow, so round-level perturbations
// never change results or makespan — only the interleaving.
//
// Execution takes one of two paths through run():
//   * the FAST path, taken when no fault injector and no watchdog are
//     configured: a tight resume loop with no fault hooks, no blocked-on
//     diagnostics strings and no stall/delay bookkeeping. Single sends and
//     receives keep their CommOp inline in the awaiter (inside the
//     coroutine frame — no heap allocation per communication), and par
//     sets can reuse caller-owned op storage across awaits. The whole
//     per-operation machinery — issue, rendezvous match, park — is
//     defined inline in this header so it compiles into the coroutine
//     bodies themselves (no out-of-line call per communication).
//   * the INSTRUMENTED path, taken whenever faults or a watchdog are
//     attached: behaviourally identical to the pre-fast-path scheduler,
//     with per-round fault release, stall service, starvation checks and
//     human-readable blocked-on state for the forensics layer. Its
//     awaiter halves live out of line in scheduler.cpp.
// Both paths count rounds with the same batch boundaries, so a clean run
// reports the same round count on either path.
//
// A third, opt-in mode runs the network on the work-stealing parallel
// substrate (runtime/shard): one shared arena of processes and channels,
// worker threads claiming ready processes from a bitmap with per-worker
// queues, and every communication completing through preallocated atomic
// mailboxes instead of the parked-op vectors. Logical clocks are
// dataflow-driven, so parallel results and makespans are bit-identical
// to sequential runs regardless of steal order.
#pragma once

#include <algorithm>
#include <atomic>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "loopnest/loop_nest.hpp"
#include "runtime/watchdog.hpp"

namespace systolize {

class Scheduler;
class Channel;
class FaultInjector;
class ShardExec;  // runtime/shard — the work-stealing parallel substrate
struct Process;

/// One pending communication of a par set. Lives in the awaiter inside the
/// suspended coroutine frame (or in caller-owned frame storage for reused
/// par sets), so its address is stable while parked.
struct CommOp {
  Channel* chan = nullptr;
  bool is_send = false;
  Value value = 0;     ///< payload (send) or received value (recv)
  Value* out = nullptr;///< where a recv deposits its value (may be null)
  Process* proc = nullptr;
  Int issue_time = 0;  ///< owner's local time when the op was issued
  bool done = false;
  Int fault_delay = 0; ///< injected delay in rounds (0 = none)
  /// Rendezvous completion time, recorded by the completing worker on the
  /// parallel substrate; the last completer of the par set folds these
  /// into the owner's clock (sequential paths advance the clock directly
  /// and leave this untouched).
  Int complete_time = 0;
};

/// Coroutine return object for process bodies.
class Task {
 public:
  struct promise_type {
    Process* proc = nullptr;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept;
  };

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  std::coroutine_handle<promise_type> handle;
};

/// A logical clock. By default every process owns one; when several
/// processes are multiplexed onto one physical processor (partitioning,
/// the paper's Sect.-8 extension via its ref. [23]) they share a clock, so
/// their events serialize in the makespan model.
struct Clock {
  Int time = 0;
};

struct Process {
  std::string name;
  std::coroutine_handle<Task::promise_type> handle;
  Scheduler* sched = nullptr;
  Clock own_clock;
  Clock* clock = &own_clock;
  Int pending = 0;  ///< outstanding ops of the current par set
  bool finished = false;
  bool in_ready_queue = false;
  std::exception_ptr error;
  /// What the process is blocked on, for deadlock diagnostics
  /// (instrumented path only; the fast path leaves it empty).
  std::string blocked_on;
  Int sends = 0;
  Int recvs = 0;
  Int statements = 0;
  /// Round the process last executed in (starvation watchdog).
  Int last_active_round = 0;
  // Injected-fault state, set by FaultInjector::on_spawn (-1 = no fault).
  Int fault_stall_round = -1;    ///< round the stall triggers at
  Int fault_stall_duration = 0;  ///< rounds the stall lasts
  bool fault_stall_served = false;
  Int fault_kill_at = -1;        ///< die at this (1-based) statement
  bool killed = false;           ///< terminated by an injected kill
  // --- work-stealing substrate state (runtime/shard) ---
  // The sequential paths never touch these; the atomic makes Process
  // non-movable, which the deque arena tolerates (elements never move).
  std::uint32_t ws_pid = 0;       ///< dense plan process id
  CommOp* ws_ops = nullptr;       ///< par set recorded at suspend
  std::uint32_t ws_count = 0;
  std::atomic<Int> ws_pending{0}; ///< undone ops of the current par set

  [[nodiscard]] Int time() const noexcept { return clock->time; }
  void advance_to(Int t) noexcept { clock->time = std::max(clock->time, t); }
};

class CommAwaiter;

/// Handle passed to process bodies: communication and clock primitives.
class Ctx {
 public:
  Ctx() = default;
  Ctx(Scheduler* sched, Process* proc) : sched_(sched), proc_(proc) {}

  [[nodiscard]] CommAwaiter send(Channel& chan, Value v);
  [[nodiscard]] CommAwaiter recv(Channel& chan, Value& out);
  /// Par composition of communications (the paper's `par` around the basic
  /// statement's receives/sends).
  [[nodiscard]] CommAwaiter par(std::vector<CommOp> ops);
  /// Par composition over caller-owned ops (typically locals of the
  /// calling coroutine, rebuilt or refreshed between awaits). Avoids the
  /// per-await vector allocation of the owning overload; the storage must
  /// stay alive until the await completes.
  [[nodiscard]] CommAwaiter par(CommOp* ops, std::size_t count);

  [[nodiscard]] CommOp send_op(Channel& chan, Value v) const;
  [[nodiscard]] CommOp recv_op(Channel& chan, Value& out) const;

  /// Advance the local clock by one step (a basic-statement execution).
  /// Fires an injected kill when the process reaches its doomed statement.
  void tick_statement();

  [[nodiscard]] Process& process() const { return *proc_; }

 private:
  void tick_kill();  ///< out-of-line kill service (scheduler.cpp)

  Scheduler* sched_ = nullptr;
  Process* proc_ = nullptr;
};

/// Awaitable performing a whole par set of sends/receives; completes when
/// every op has transferred. A single-element set is an ordinary
/// synchronous send or receive and keeps its op inline (no allocation).
class CommAwaiter {
 public:
  /// Single send/receive; the op lives inside the awaiter.
  CommAwaiter(Ctx ctx, const CommOp& op)
      : ctx_(ctx), single_(op), ops_(&single_), count_(1) {}
  /// Par set over caller-owned storage (not copied).
  CommAwaiter(Ctx ctx, CommOp* ops, std::size_t count)
      : ctx_(ctx), ops_(ops), count_(count) {}
  /// Par set owning its ops.
  CommAwaiter(Ctx ctx, std::vector<CommOp> ops)
      : ctx_(ctx),
        owned_(std::move(ops)),
        ops_(owned_.data()),
        count_(owned_.size()) {}

  // The awaiter hands out pointers into itself (ops_ may alias single_),
  // so it must be awaited where it was materialized.
  CommAwaiter(const CommAwaiter&) = delete;
  CommAwaiter& operator=(const CommAwaiter&) = delete;

  [[nodiscard]] bool await_ready();
  void await_suspend(std::coroutine_handle<> h);
  void await_resume();

 private:
  /// Instrumented halves (fault rolls, blocked-on diagnostics) live out
  /// of line in scheduler.cpp; the fast path never calls them.
  [[nodiscard]] bool ready_instrumented();
  void suspend_instrumented();

  Ctx ctx_;
  std::vector<CommOp> owned_;
  CommOp single_;
  CommOp* ops_ = nullptr;
  std::size_t count_ = 0;
};

/// Synchronous channel (optionally with a small FIFO buffer when
/// `capacity > 0`; the paper's model is capacity 0 — pure rendezvous).
class Channel {
 public:
  Channel(std::string name, Scheduler* sched, Int capacity = 0)
      : name_(std::move(name)), sched_(sched), capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Int transfers() const noexcept { return transfers_; }
  [[nodiscard]] Scheduler* scheduler() const noexcept { return sched_; }

  /// Opaque routing tag for parallel runs (the plan channel id, used to
  /// index the substrate's mailboxes); -1 outside parallel execution.
  void set_shard_tag(Int tag) noexcept { shard_tag_ = tag; }
  [[nodiscard]] Int shard_tag() const noexcept { return shard_tag_; }

  /// Attempt the op now; true if it completed without parking.
  bool try_complete(CommOp& op);
  /// Park the op until a partner arrives.
  void park(CommOp& op);
  /// Pair mutually-parked ops (and drain the buffer into parked
  /// receivers). Only injected delays can leave both sides parked, so
  /// this is a no-op on fault-free runs.
  void match_parked();

  // --- forensic access (deadlock reports) ---
  [[nodiscard]] const std::vector<CommOp*>& parked_senders() const noexcept {
    return senders_;
  }
  [[nodiscard]] const std::vector<CommOp*>& parked_receivers() const noexcept {
    return receivers_;
  }
  /// Last process seen on each side (the wait-for counterpart even when
  /// that side is not currently parked).
  [[nodiscard]] Process* known_sender() const noexcept {
    return known_sender_;
  }
  [[nodiscard]] Process* known_receiver() const noexcept {
    return known_receiver_;
  }
  /// Declare the process that will sit on a side of this channel, so the
  /// deadlock forensics can follow wait-for edges through processes that
  /// have not yet touched the channel (in a rendezvous cycle, the
  /// counterpart of a parked op typically never reached it). The
  /// instantiation layer declares both endpoints of every channel;
  /// hand-built networks may skip this — forensics then falls back to
  /// observed use, and the cycle may be reported empty.
  void declare_sender(Process& p) noexcept { known_sender_ = &p; }
  void declare_receiver(Process& p) noexcept { known_receiver_ = &p; }

 private:
  friend class ShardExec;  ///< folds substrate transfer counts back in

  struct Stamped {
    Value value;
    Int time;
  };

  void complete_counterpart(CommOp& op, Value v, Int time);
  /// Post-transfer fault hook: may ghost-deliver the value a second time.
  /// The inline shell only pays a pointer test on fault-free runs.
  void after_transfer(Value v, Int time);
  void after_transfer_slow(Value v, Int time);  ///< scheduler.cpp

  // --- flat FIFO over a vector (no allocation until first buffering) ---
  [[nodiscard]] bool buffer_empty() const noexcept {
    return buffer_head_ == buffer_.size();
  }
  [[nodiscard]] Int buffer_size() const noexcept {
    return static_cast<Int>(buffer_.size() - buffer_head_);
  }
  void buffer_push(Stamped s) { buffer_.push_back(s); }
  Stamped buffer_pop() {
    Stamped s = buffer_[buffer_head_++];
    if (buffer_head_ == buffer_.size()) {
      buffer_.clear();
      buffer_head_ = 0;
    }
    return s;
  }

  std::string name_;
  Scheduler* sched_;
  Int capacity_;
  /// Buffered values as a vector + head cursor instead of a deque: a
  /// capacity-0 rendezvous channel never allocates, and the common
  /// buffered case (drained every round) resets to empty instead of
  /// shuffling deque nodes.
  std::vector<Stamped> buffer_;
  std::size_t buffer_head_ = 0;
  std::vector<CommOp*> senders_;
  std::vector<CommOp*> receivers_;
  Int transfers_ = 0;
  Int shard_tag_ = -1;
  Process* known_sender_ = nullptr;
  Process* known_receiver_ = nullptr;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  /// Create a process; `body` is called immediately to build the coroutine
  /// (suspended until run()). When `clock` is non-null the process shares
  /// it (processor multiplexing); it must outlive the scheduler run.
  /// Processes live in a chunked arena (a deque), so their addresses are
  /// stable and spawning performs no per-process allocation beyond the
  /// coroutine frame itself.
  template <class Body>
  Process& spawn(std::string name, const Body& body, Clock* clock = nullptr) {
    Process& ref = processes_.emplace_back();
    ref.name = std::move(name);
    ref.sched = this;
    if (clock != nullptr) ref.clock = clock;
    Task task = body(Ctx(this, &ref));
    ref.handle = task.handle;
    task.handle.promise().proc = &ref;
    finish_spawn(ref);
    return ref;
  }

  /// Create a channel owned by the scheduler (same chunked-arena storage
  /// as processes: stable addresses, no per-channel heap node).
  Channel& make_channel(std::string name, Int capacity = 0);

  /// Run to completion. Throws Error(Runtime) with a forensic deadlock
  /// report on stall or watchdog expiry, and rethrows the first process
  /// exception.
  void run();

  void make_ready(Process& proc) {
    if (proc.finished || proc.in_ready_queue) return;
    proc.in_ready_queue = true;
    ready_.push_back(&proc);
  }

  /// Attach a fault injector for the next run (nullptr = none). The
  /// injector must outlive the run.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
    refresh_mode();
  }
  [[nodiscard]] FaultInjector* injector() const noexcept { return injector_; }

  void set_watchdog(const WatchdogConfig& config) noexcept {
    watchdog_ = config;
    refresh_mode();
  }

  /// True when faults or a watchdog are attached: run() then takes the
  /// instrumented path and awaiters record blocked-on diagnostics.
  [[nodiscard]] bool instrumented() const noexcept { return instrumented_; }

  /// Attach/detach the work-stealing executor driving this scheduler's
  /// processes on the parallel substrate (runtime/shard). While attached,
  /// awaiters route every communication through the executor's mailboxes.
  void set_shard_exec(ShardExec* exec) noexcept { shard_ = exec; }
  [[nodiscard]] ShardExec* shard_exec() const noexcept { return shard_; }
  [[nodiscard]] bool sharded() const noexcept { return shard_ != nullptr; }

  /// Hold a parked-to-be op out of its channel for `delay` rounds
  /// (injected transfer delay); called from the comm awaiter.
  void defer_op(CommOp& op, Int delay);

  [[nodiscard]] Int round() const noexcept { return round_; }

  [[nodiscard]] const std::deque<Process>& processes() const noexcept {
    return processes_;
  }
  [[nodiscard]] std::deque<Process>& processes() noexcept {
    return processes_;
  }
  [[nodiscard]] std::size_t channel_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] const std::deque<Channel>& channels() const noexcept {
    return channels_;
  }
  /// Ops currently held by an injected delay (forensic access).
  [[nodiscard]] const std::multimap<Int, CommOp*>& delayed_ops()
      const noexcept {
    return delayed_;
  }
  /// Processes currently held by an injected stall (forensic access).
  [[nodiscard]] const std::multimap<Int, Process*>& stalled_processes()
      const noexcept {
    return stalled_;
  }
  [[nodiscard]] Int total_transfers() const;
  [[nodiscard]] Int makespan() const;

 private:
  friend class ShardExec;

  /// Injector spawn hook + initial enqueue (out-of-line half of spawn).
  void finish_spawn(Process& ref);
  void refresh_mode() noexcept {
    instrumented_ = injector_ != nullptr || watchdog_.max_rounds > 0 ||
                    watchdog_.max_blocked_rounds > 0 ||
                    watchdog_.cancel != nullptr;
  }
  /// The zero-overhead resume loop (no faults, no watchdog).
  void run_fast();
  /// The fully instrumented loop (fault release, stall service, watchdog).
  void run_instrumented();
  /// Re-queue stalled processes and re-offer delayed ops whose release
  /// round has arrived.
  void release_due();
  /// Starvation watchdog: trip when a blocked process has been inactive
  /// for more than max_blocked_rounds while the scheduler still turns.
  void check_starvation();

  std::deque<Process> processes_;
  std::deque<Channel> channels_;
  /// Double-buffered flat ready queue: make_ready appends to ready_; a
  /// round swaps it into batch_ and drains the batch, so "one round = the
  /// entries present at round start" with no deque churn.
  std::vector<Process*> ready_;
  std::vector<Process*> batch_;
  std::multimap<Int, Process*> stalled_;  ///< release round -> process
  std::multimap<Int, CommOp*> delayed_;   ///< release round -> held op
  FaultInjector* injector_ = nullptr;
  WatchdogConfig watchdog_;
  ShardExec* shard_ = nullptr;
  bool instrumented_ = false;
  Int round_ = 0;
};

/// Route a suspending par set through the work-stealing executor (defined
/// in runtime/shard.cpp; never called on sequential runs).
void shard_suspend(ShardExec& exec, Process& proc, CommOp* ops,
                   std::size_t count);

// ---------------------------------------------------------------------
// Inline fast path. Everything below is the per-communication machinery
// of the zero-overhead loop; defining it here lets it compile directly
// into the coroutine bodies (measured ~35% of relay-chain time was spent
// crossing these as out-of-line calls).

inline void Channel::complete_counterpart(CommOp& op, Value v, Int time) {
  // `op` is a *parked* op of another process: finish it at logical time
  // `time` and wake its owner when its whole par set is done.
  if (!op.is_send) {
    op.value = v;
    if (op.out != nullptr) *op.out = v;
  }
  Process& p = *op.proc;
  p.advance_to(time);
  op.done = true;
  if (op.is_send) {
    ++p.sends;
  } else {
    ++p.recvs;
  }
  if (--p.pending == 0) p.sched->make_ready(p);
}

inline void Channel::after_transfer(Value v, Int time) {
  if (sched_ == nullptr || sched_->injector() == nullptr) return;
  after_transfer_slow(v, time);
}

inline bool Channel::try_complete(CommOp& op) {
  Process& self = *op.proc;
  (op.is_send ? known_sender_ : known_receiver_) = &self;
  if (op.is_send) {
    if (!receivers_.empty()) {
      CommOp* r = receivers_.front();
      receivers_.erase(receivers_.begin());
      // Rendezvous: both sides advance to max(issue times) + 1.
      Int t = std::max(op.issue_time, r->issue_time) + 1;
      self.advance_to(t);
      ++self.sends;
      ++transfers_;
      op.done = true;
      complete_counterpart(*r, op.value, t);
      after_transfer(op.value, t);
      return true;
    }
    if (buffer_size() < capacity_) {
      // Buffered hand-off: the value leaves the sender one step later.
      self.advance_to(op.issue_time + 1);
      buffer_push(Stamped{op.value, self.time()});
      ++self.sends;
      ++transfers_;
      op.done = true;
      after_transfer(op.value, self.time());
      return true;
    }
    return false;
  }
  // Receive.
  if (!buffer_empty()) {
    Stamped s = buffer_pop();
    op.value = s.value;
    if (op.out != nullptr) *op.out = s.value;
    self.advance_to(std::max(op.issue_time + 1, s.time));
    ++self.recvs;
    op.done = true;
    // A parked sender may now fit into the freed buffer slot.
    if (!senders_.empty() && buffer_size() < capacity_) {
      CommOp* snd = senders_.front();
      senders_.erase(senders_.begin());
      Int t = snd->issue_time + 1;
      buffer_push(Stamped{snd->value, t});
      ++transfers_;
      complete_counterpart(*snd, snd->value, t);
      after_transfer(snd->value, t);
    }
    return true;
  }
  if (!senders_.empty()) {
    CommOp* snd = senders_.front();
    senders_.erase(senders_.begin());
    Int t = std::max(op.issue_time, snd->issue_time) + 1;
    op.value = snd->value;
    if (op.out != nullptr) *op.out = snd->value;
    self.advance_to(t);
    ++self.recvs;
    op.done = true;
    ++transfers_;
    complete_counterpart(*snd, snd->value, t);
    after_transfer(snd->value, t);
    return true;
  }
  return false;
}

inline void Channel::park(CommOp& op) {
  (op.is_send ? known_sender_ : known_receiver_) = op.proc;
  (op.is_send ? senders_ : receivers_).push_back(&op);
}

inline bool CommAwaiter::await_ready() {
  Process& p = ctx_.process();
  Scheduler* sched = p.sched;
  const Int now = p.time();
  // Issue the whole par set at the owner's current local time before any
  // op is attempted (an earlier op's rendezvous must not advance the
  // issue time of a later op in the same set).
  for (std::size_t i = 0; i < count_; ++i) {
    CommOp& op = ops_[i];
    op.proc = &p;
    op.issue_time = now;
    op.done = false;
    op.fault_delay = 0;
  }
  if (sched->sharded()) {
    // Parallel runs complete every op through the substrate's mailboxes;
    // the awaiter always suspends and hands the set to the executor.
    return false;
  }
  if (sched->injector() != nullptr) return ready_instrumented();
  bool all = true;
  for (std::size_t i = 0; i < count_; ++i) {
    CommOp& op = ops_[i];
    if (!op.chan->try_complete(op)) all = false;
  }
  return all;
}

inline void CommAwaiter::await_suspend(std::coroutine_handle<> h) {
  (void)h;  // the scheduler resumes via the process handle
  Process& p = ctx_.process();
  Scheduler* sched = p.sched;
  if (sched->sharded()) {
    shard_suspend(*sched->shard_exec(), p, ops_, count_);
    return;
  }
  if (sched->instrumented()) {
    suspend_instrumented();
    return;
  }
  // Fast path: count and park, no diagnostics strings, no fault state.
  p.pending = 0;
  for (std::size_t i = 0; i < count_; ++i) {
    CommOp& op = ops_[i];
    if (op.done) continue;
    ++p.pending;
    op.chan->park(op);
  }
}

inline void CommAwaiter::await_resume() {
  // A par set completes only when its slowest member does; the per-op
  // times were already folded into the process clock.
  ctx_.process().blocked_on.clear();
}

inline CommOp Ctx::send_op(Channel& chan, Value v) const {
  CommOp op;
  op.chan = &chan;
  op.is_send = true;
  op.value = v;
  op.proc = proc_;
  return op;
}

inline CommOp Ctx::recv_op(Channel& chan, Value& out) const {
  CommOp op;
  op.chan = &chan;
  op.is_send = false;
  op.out = &out;
  op.proc = proc_;
  return op;
}

inline CommAwaiter Ctx::send(Channel& chan, Value v) {
  return CommAwaiter(*this, send_op(chan, v));
}

inline CommAwaiter Ctx::recv(Channel& chan, Value& out) {
  return CommAwaiter(*this, recv_op(chan, out));
}

inline CommAwaiter Ctx::par(std::vector<CommOp> ops) {
  return CommAwaiter(*this, std::move(ops));
}

inline CommAwaiter Ctx::par(CommOp* ops, std::size_t count) {
  return CommAwaiter(*this, ops, count);
}

inline void Ctx::tick_statement() {
  ++proc_->clock->time;
  ++proc_->statements;
  if (proc_->fault_kill_at >= 0 &&
      proc_->statements == proc_->fault_kill_at) {
    tick_kill();  // throws ProcessKilledSignal
  }
}

}  // namespace systolize
