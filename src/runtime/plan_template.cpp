#include "runtime/plan_template.hpp"

#include <algorithm>
#include <charconv>
#include <map>

#include "scheme/types.hpp"
#include "support/error.hpp"
#include "symbolic/fourier_motzkin.hpp"

namespace systolize {

// -------------------------------------------------------- form evaluation

Int LinForm::eval_scaled(const Int* vars) const {
  Int acc = constant;
  for (const auto& [var, coeff] : terms) {
    acc = checked_add(acc, checked_mul(coeff, vars[var]));
  }
  return acc;
}

Int LinForm::eval(const Int* vars) const {
  const Int num = eval_scaled(vars);
  if (den == 1) return num;
  if (num % den != 0) {
    raise(ErrorKind::NotRepresentable,
          "plan template: affine form evaluates to the non-integer " +
              std::to_string(num) + "/" + std::to_string(den));
  }
  return num / den;
}

bool TemplateGuard::holds(const Int* vars) const {
  for (const LinForm& s : slacks) {
    if (s.eval_scaled(vars) < 0) return false;
  }
  return true;
}

const LinForm* TemplateExpr::select(const Int* vars) const {
  for (const Piece& p : pieces) {
    if (p.guard.holds(vars)) return &p.value;
  }
  return nullptr;
}

const std::vector<LinForm>* TemplatePoint::select(const Int* vars) const {
  for (const Piece& p : pieces) {
    if (p.guard.holds(vars)) return &p.value;
  }
  return nullptr;
}

// ------------------------------------------------------- stage 1: lowering

namespace {

/// Shared lowering state: process coordinates occupy variable indices
/// [0, ncoords); size symbols are appended in discovery order.
struct Lowerer {
  const Guard& assumptions;
  std::size_t ncoords = 0;
  std::map<std::string, std::uint32_t> var_index;
  std::vector<std::string> size_symbols;

  std::uint32_t index_of(const Symbol& s) {
    auto [it, inserted] = var_index.emplace(
        s.name(),
        static_cast<std::uint32_t>(ncoords + size_symbols.size()));
    if (inserted) size_symbols.push_back(s.name());
    return it->second;
  }

  /// Scale the rational coefficients by their lcm denominator so stage 2
  /// never touches a Rational. den > 0 by the Rational invariant.
  LinForm lower(const AffineExpr& e) {
    Int den = e.constant().den();
    for (const auto& [sym, c] : e.terms()) den = lcm(den, c.den());
    LinForm f;
    f.den = den;
    f.constant = checked_mul(e.constant().num(), den / e.constant().den());
    f.terms.reserve(e.terms().size());
    for (const auto& [sym, c] : e.terms()) {
      f.terms.emplace_back(index_of(sym),
                           checked_mul(c.num(), den / c.den()));
    }
    return f;
  }

  TemplateGuard lower(const Guard& g) {
    TemplateGuard out;
    out.slacks.reserve(g.constraints().size());
    for (const Constraint& c : g.constraints()) out.slacks.push_back(lower(c.slack()));
    return out;
  }

  std::vector<LinForm> lower(const AffinePoint& p) {
    std::vector<LinForm> comps;
    comps.reserve(p.dim());
    for (std::size_t i = 0; i < p.dim(); ++i) comps.push_back(lower(p[i]));
    return comps;
  }

  /// Clause-level pruning: Fourier-Motzkin drops alternatives that can
  /// never fire under the program's standing assumptions (size bounds +
  /// PS-box membership of the coordinates). Within those assumptions,
  /// select() order and outcome are unchanged. This is the only use of
  /// symbolic machinery in the template pipeline, and it runs once here.
  TemplateExpr lower_expr(const Piecewise<AffineExpr>& pw) {
    TemplateExpr out;
    for (const Piece<AffineExpr>& p : pw.pieces()) {
      if (!is_feasible(p.guard, assumptions)) continue;
      out.pieces.push_back({lower(p.guard), lower(p.value)});
    }
    return out;
  }

  TemplatePoint lower_point(const Piecewise<AffinePoint>& pw) {
    TemplatePoint out;
    for (const Piece<AffinePoint>& p : pw.pieces()) {
      if (!is_feasible(p.guard, assumptions)) continue;
      out.pieces.push_back({lower(p.guard), lower(p.value)});
    }
    return out;
  }
};

std::size_t string_bytes(const std::string& s) { return s.capacity(); }

std::size_t form_bytes(const LinForm& f) {
  return f.terms.capacity() * sizeof(f.terms[0]);
}

std::size_t guard_bytes(const TemplateGuard& g) {
  std::size_t n = g.slacks.capacity() * sizeof(LinForm);
  for (const LinForm& f : g.slacks) n += form_bytes(f);
  return n;
}

std::size_t expr_bytes(const TemplateExpr& e) {
  std::size_t n = e.pieces.capacity() * sizeof(TemplateExpr::Piece);
  for (const TemplateExpr::Piece& p : e.pieces) {
    n += guard_bytes(p.guard) + form_bytes(p.value);
  }
  return n;
}

std::size_t point_bytes(const TemplatePoint& e) {
  std::size_t n = e.pieces.capacity() * sizeof(TemplatePoint::Piece);
  for (const TemplatePoint::Piece& p : e.pieces) {
    n += guard_bytes(p.guard) + p.value.capacity() * sizeof(LinForm);
    for (const LinForm& f : p.value) n += form_bytes(f);
  }
  return n;
}

}  // namespace

std::size_t PlanTemplate::memory_bytes() const {
  std::size_t n = sizeof(PlanTemplate);
  n += string_bytes(program_name);
  for (const std::string& s : size_symbols) n += string_bytes(s);
  n += ps_min.capacity() * sizeof(LinForm);
  n += ps_max.capacity() * sizeof(LinForm);
  for (const LinForm& f : ps_min) n += form_bytes(f);
  for (const LinForm& f : ps_max) n += form_bytes(f);
  n += point_bytes(first) + expr_bytes(count);
  n += streams.capacity() * sizeof(StreamTemplate);
  for (const StreamTemplate& s : streams) {
    n += string_bytes(s.name) + string_bytes(s.pipe_prefix) +
         string_bytes(s.in_prefix) + string_bytes(s.out_prefix) +
         string_bytes(s.buf_prefix) + string_bytes(s.xbuf_prefix);
    n += point_bytes(s.first_s) + expr_bytes(s.count_s) +
         expr_bytes(s.soak) + expr_bytes(s.drain);
  }
  return n;
}

std::shared_ptr<const PlanTemplate> compile_template(
    const CompiledProgram& program, const LoopNest& nest,
    const PlanShape& shape) {
  auto tmpl = std::make_shared<PlanTemplate>();
  tmpl->program_name = program.name;
  tmpl->program_generation = program.generation;
  tmpl->depth = program.depth;
  tmpl->shape = shape;
  tmpl->ncoords = program.coords.size();
  tmpl->body = nest.body();
  tmpl->increment = program.repeater.increment;

  Lowerer lo{program.assumptions, program.coords.size(), {}, {}};
  for (std::size_t i = 0; i < program.coords.size(); ++i) {
    lo.var_index.emplace(program.coords[i].name(),
                         static_cast<std::uint32_t>(i));
  }

  tmpl->ps_min.reserve(program.ps.min.dim());
  tmpl->ps_max.reserve(program.ps.max.dim());
  for (std::size_t i = 0; i < program.ps.min.dim(); ++i) {
    tmpl->ps_min.push_back(lo.lower(program.ps.min[i]));
  }
  for (std::size_t i = 0; i < program.ps.max.dim(); ++i) {
    tmpl->ps_max.push_back(lo.lower(program.ps.max[i]));
  }
  tmpl->first = lo.lower_point(program.repeater.first);
  tmpl->count = lo.lower_expr(program.repeater.count);

  tmpl->streams.reserve(program.streams.size());
  for (const StreamPlan& splan : program.streams) {
    PlanTemplate::StreamTemplate st;
    st.name = splan.name;
    st.stationary = splan.motion.stationary;
    st.direction = splan.motion.direction;
    st.denominator = splan.motion.denominator;
    st.increment_s = splan.io.increment_s;
    st.first_s = lo.lower_point(splan.io.first_s);
    st.count_s = lo.lower_expr(splan.io.count_s);
    st.soak = lo.lower_expr(splan.soak);
    st.drain = lo.lower_expr(splan.drain);
    st.pipe_prefix = splan.name + "[";
    st.in_prefix = "in:" + splan.name + ":";
    st.out_prefix = "out:" + splan.name + ":";
    st.buf_prefix = "buf:" + splan.name + ":";
    st.xbuf_prefix = "xbuf:" + splan.name + ":";
    tmpl->streams.push_back(std::move(st));
  }

  tmpl->size_symbols = std::move(lo.size_symbols);
  return tmpl;
}

// ------------------------------------------------------ stage 2: expansion

// The expansion mirrors build_plan() statement for statement — same spawn
// order, same channel creation order, same graph node/edge sequence, same
// diagnostics — with every symbolic evaluation replaced by an integer dot
// product against the template's coefficient tables. Structural bookkeeping
// that build_plan keeps in string- or Env-keyed maps is replaced by flat
// arrays indexed with the PS box's row-major strides.
std::unique_ptr<NetworkPlan> expand_template(const PlanTemplate& tmpl,
                                             const Env& sizes) {
  auto plan_ptr = std::make_unique<NetworkPlan>();
  NetworkPlan& plan = *plan_ptr;
  plan.body = tmpl.body;
  plan.increment = tmpl.increment;

  // Bind the template variables: coordinates are rewritten per PS point,
  // sizes once per expansion.
  const std::size_t ncoords = tmpl.ncoords;
  std::vector<Int> vars(ncoords + tmpl.size_symbols.size(), 0);
  for (std::size_t i = 0; i < tmpl.size_symbols.size(); ++i) {
    auto it = sizes.find(tmpl.size_symbols[i]);
    if (it == sizes.end()) {
      raise(ErrorKind::Validation, "unbound symbol '" + tmpl.size_symbols[i] +
                                       "' in plan template expansion");
    }
    if (!it->second.is_integer()) {
      raise(ErrorKind::Validation,
            "plan template expansion requires integer problem sizes: '" +
                tmpl.size_symbols[i] + "' = " + it->second.to_string());
    }
    vars[ncoords + i] = it->second.num();
  }
  const Int* v = vars.data();
  auto bind_coords = [&vars, ncoords](const IntVec& y) {
    for (std::size_t i = 0; i < ncoords; ++i) vars[i] = y[i];
  };

  const std::size_t psdim = tmpl.ps_min.size();
  IntVec ps_min(psdim);
  IntVec ps_max(psdim);
  for (std::size_t i = 0; i < psdim; ++i) ps_min[i] = tmpl.ps_min[i].eval(v);
  for (std::size_t i = 0; i < psdim; ++i) ps_max[i] = tmpl.ps_max[i].eval(v);
  plan.ps_min = ps_min;
  plan.ps_max = ps_max;

  const PlanShape& shape = tmpl.shape;

  // Partitioning: dense shared-clock ids in first-use order, exactly as in
  // build_plan (-1 when unpartitioned).
  std::map<IntVec, std::int32_t, IntVecLess> clock_ids;
  auto clock_for = [&](const IntVec& y) -> std::int32_t {
    if (shape.partition_grid.dim() == 0) return -1;
    if (shape.partition_grid.dim() != y.dim()) {
      raise(ErrorKind::Validation,
            "partition grid must have one entry per process-space "
            "dimension");
    }
    IntVec block(y.dim());
    for (std::size_t i = 0; i < y.dim(); ++i) {
      Int extent = ps_max[i] - ps_min[i] + 1;
      Int g =
          std::max<Int>(1, std::min<Int>(shape.partition_grid[i], extent));
      block[i] = (y[i] - ps_min[i]) * g / extent;
    }
    auto [it, inserted] = clock_ids.emplace(
        block, static_cast<std::int32_t>(clock_ids.size()));
    (void)inserted;
    return it->second;
  };

  // Enumerate the PS box (last dimension fastest — build_plan's order) and
  // precompute row-major strides so per-point state lives in flat arrays
  // instead of IntVec-keyed maps.
  std::vector<IntVec> box;
  {
    IntVec y = ps_min;
    for (;;) {
      box.push_back(y);
      std::size_t i = y.dim();
      bool done = true;
      while (i > 0) {
        --i;
        if (++y[i] <= ps_max[i]) {
          done = false;
          break;
        }
        y[i] = ps_min[i];
        if (i == 0) break;
      }
      if (done) break;
    }
  }
  std::vector<Int> stride(psdim, 1);
  for (std::size_t i = psdim; i-- > 1;) {
    stride[i - 1] =
        checked_mul(stride[i], std::max<Int>(1, ps_max[i] - ps_min[i] + 1));
  }

  // CS membership per box point: the repeater's `first` cover. Also cache
  // each point's rendering — every process/node name embeds it, several
  // times across streams and roles.
  std::vector<char> in_cs(box.size(), 0);
  std::vector<std::string> point_str(box.size());
  for (std::size_t k = 0; k < box.size(); ++k) {
    bind_coords(box[k]);
    in_cs[k] = tmpl.first.covers(v) ? 1 : 0;
    point_str[k] = box[k].to_string();
  }

  // Ports of each computation process, indexed [box point][stream].
  struct Port {
    std::int32_t in = -1;
    std::int32_t out = -1;
    Int pipe_count = 0;
  };
  const std::size_t nstreams = tmpl.streams.size();
  std::vector<Port> ports(box.size() * nstreams);

  NetworkGraph& net = plan.graph;
  // build_plan funnels every insertion through NetworkGraph::add_node,
  // whose duplicate check linear-scans all nodes (quadratic overall). The
  // only duplicates a plan ever produces are computation nodes, revisited
  // once per stream, so an O(1) seen-flag per box point reproduces the
  // exact same node sequence.
  std::vector<char> comp_node_seen(box.size(), 0);

  auto add_channel = [&](std::string name, std::uint32_t stream,
                         Int capacity) -> std::int32_t {
    auto id = static_cast<std::int32_t>(plan.channels.size());
    plan.channels.push_back(
        NetworkPlan::ChannelSpec{std::move(name), stream, capacity, -1, -1});
    return id;
  };

  for (std::uint32_t stream_id = 0; stream_id < nstreams; ++stream_id) {
    const PlanTemplate::StreamTemplate& st = tmpl.streams[stream_id];
    plan.streams.push_back(st.name);

    const IntVec& dir = st.direction;
    const Int q = st.denominator;
    const Int inner_buffers = shape.merge_internal_buffers ? 0 : q - 1;
    const Int hop_capacity = shape.channel_capacity +
                             (shape.merge_internal_buffers ? q - 1 : 0);

    // Group box points into pipes by their upstream anchor, in the order
    // build_plan produces: anchors ascend lexicographically, which on the
    // row-major box equals ascending box index, and a pipe's points ascend
    // by dot(dir), which equals box-index order up to the sign of the
    // per-step index delta. The anchor itself is y - steps*dir with
    // steps = min over dims of the distance to the upstream box face — the
    // closed form of the symbolic path's step-until-outside walk (the PS
    // box is a rectangle, so every intermediate point is inside).
    Int delta = 0;
    for (std::size_t i = 0; i < psdim; ++i) delta += dir[i] * stride[i];
    std::vector<std::vector<std::uint32_t>> pipes_by_anchor(box.size());
    for (std::size_t k = 0; k < box.size(); ++k) {
      const IntVec& y = box[k];
      Int steps = -1;
      for (std::size_t i = 0; i < psdim; ++i) {
        const Int d = dir[i];
        if (d == 0) continue;
        const Int t = d > 0 ? (y[i] - ps_min[i]) / d : (ps_max[i] - y[i]) / -d;
        steps = steps < 0 ? t : std::min(steps, t);
      }
      const std::size_t ai =
          steps <= 0 ? k
                     : static_cast<std::size_t>(static_cast<Int>(k) -
                                                steps * delta);
      pipes_by_anchor[ai].push_back(static_cast<std::uint32_t>(k));
    }
    std::size_t pipe_idx = 0;
    for (std::size_t ai = 0; ai < pipes_by_anchor.size(); ++ai) {
      std::vector<std::uint32_t>& points = pipes_by_anchor[ai];
      if (points.empty()) continue;
      // Points arrive in ascending box index; downstream order (ascending
      // dot(dir)) is the same sequence, reversed when a +dir step moves
      // backwards through the row-major enumeration.
      if (delta < 0) std::reverse(points.begin(), points.end());
      const IntVec& a = box[ai];
      bind_coords(a);
      const LinForm* count_form = st.count_s.select(v);
      Int count = count_form == nullptr ? 0 : count_form->eval(v);

      // Element identities in pipeline order, as one flat slice shared by
      // the pipe's input and output processes.
      const std::size_t elem_begin = plan.elems.size();
      if (count > 0) {
        const std::vector<LinForm>* first_form = st.first_s.select(v);
        if (first_form == nullptr) {
          raise(ErrorKind::Inconsistent,
                "stream '" + st.name + "': count_s > 0 but first_s null");
        }
        IntVec w(first_form->size());
        for (std::size_t i = 0; i < first_form->size(); ++i) {
          w[i] = (*first_form)[i].eval(v);
        }
        for (Int t = 0; t < count; ++t) {
          plan.elems.push_back(w);
          w += st.increment_s;
        }
      }
      const std::size_t elem_end = plan.elems.size();

      // Channel chain: IN -> [bufs] -> y0 -> [bufs] -> y1 ... -> OUT.
      const std::string cname = st.pipe_prefix + std::to_string(pipe_idx) + "]";
      auto chan_name = [&cname](std::size_t link) {
        std::string s;
        s.reserve(cname.size() + 12);
        s += cname;
        s += '.';
        char buf[20];
        auto* end = std::to_chars(buf, buf + sizeof buf, link).ptr;
        s.append(buf, end);
        return s;
      };
      std::int32_t prev =
          add_channel(chan_name(0), stream_id, shape.channel_capacity);
      const std::int32_t head = prev;
      std::size_t link = 1;
      const std::string in_name = st.in_prefix + point_str[ai];
      net.nodes.push_back(
          NetworkGraph::Node{in_name, NetworkGraph::NodeKind::Input});
      std::string last_node = in_name;
      // Same node/edge sequence as build_plan's add_node + add_edge pair;
      // all names funnelled through here are new by construction (the
      // deduplicated computation nodes are handled at their use site).
      auto link_node = [&](std::string node, NetworkGraph::NodeKind kind,
                           std::int32_t via) {
        net.edges.push_back(NetworkGraph::Edge{
            std::move(last_node), node, plan.channels[via].name, st.name});
        last_node = std::move(node);
        net.nodes.push_back(NetworkGraph::Node{last_node, kind});
      };
      auto add_pass = [&](std::string name, std::int32_t in,
                          std::int32_t out, const IntVec& y) {
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = std::move(name);
        spec.kind = NetworkPlan::ProcKind::Pass;
        spec.clock = clock_for(y);
        spec.stream = stream_id;
        spec.chan_in = in;
        spec.chan_out = out;
        spec.count = count;
        spec.place = y;
        plan.procs.push_back(std::move(spec));
        plan.channels[in].receiver = id;
        plan.channels[out].sender = id;
        ++plan.buffer_count;
      };
      for (const std::uint32_t k : points) {
        const IntVec& y = box[k];
        // Internal buffers in front of every process on the pipe.
        for (Int bi = 0; bi < inner_buffers; ++bi) {
          std::int32_t next = add_channel(chan_name(link++), stream_id,
                                          shape.channel_capacity);
          std::string bname =
              st.buf_prefix + point_str[k] + "#" + std::to_string(bi);
          add_pass(bname, prev, next, y);
          link_node(std::move(bname), NetworkGraph::NodeKind::Buffer, prev);
          prev = next;
        }
        std::int32_t next =
            add_channel(chan_name(link++), stream_id, hop_capacity);
        if (in_cs[k] != 0) {
          ports[k * nstreams + stream_id] = Port{prev, next, count};
          std::string cnode = "comp:" + point_str[k];
          net.edges.push_back(NetworkGraph::Edge{
              std::move(last_node), cnode, plan.channels[prev].name, st.name});
          last_node = std::move(cnode);
          if (comp_node_seen[k] == 0) {
            comp_node_seen[k] = 1;
            net.nodes.push_back(NetworkGraph::Node{
                last_node, NetworkGraph::NodeKind::Computation});
          }
        } else {
          // External buffer process: pass the whole pipeline (Eq. 10).
          std::string xname = st.xbuf_prefix + point_str[k];
          add_pass(xname, prev, next, y);
          link_node(std::move(xname), NetworkGraph::NodeKind::Buffer, prev);
        }
        prev = next;
      }

      // Input and output i/o processes for this pipe.
      {
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = in_name;
        spec.kind = NetworkPlan::ProcKind::Input;
        spec.clock = clock_for(a);
        spec.stream = stream_id;
        spec.chan_out = head;
        spec.count = count;
        spec.elem_begin = elem_begin;
        spec.elem_end = elem_end;
        spec.place = a;
        plan.procs.push_back(std::move(spec));
        plan.channels[head].sender = id;
      }
      {
        const IntVec& tail = box[points.back()];
        std::string out_name = st.out_prefix + point_str[points.back()];
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = out_name;
        spec.kind = NetworkPlan::ProcKind::Output;
        spec.clock = clock_for(tail);
        spec.stream = stream_id;
        spec.chan_in = prev;
        spec.count = count;
        spec.elem_begin = elem_begin;
        spec.elem_end = elem_end;
        spec.place = tail;
        plan.procs.push_back(std::move(spec));
        plan.channels[prev].receiver = id;
        link_node(std::move(out_name), NetworkGraph::NodeKind::Output, prev);
      }
      plan.io_count += 2;
      ++pipe_idx;
    }
  }

  // Computation processes.
  for (std::size_t k = 0; k < box.size(); ++k) {
    if (in_cs[k] == 0) continue;
    const IntVec& y = box[k];
    bind_coords(y);
    auto id = static_cast<std::int32_t>(plan.procs.size());
    NetworkPlan::ProcSpec spec;
    spec.name = "comp:" + point_str[k];
    spec.kind = NetworkPlan::ProcKind::Comp;
    spec.clock = clock_for(y);
    spec.count = tmpl.count.select(v)->eval(v);
    const std::vector<LinForm>& first_form = *tmpl.first.select(v);
    IntVec first_x(first_form.size());
    for (std::size_t i = 0; i < first_form.size(); ++i) {
      first_x[i] = first_form[i].eval(v);
    }
    spec.first_x = std::move(first_x);
    spec.coords = y;
    spec.place = y;
    spec.role_begin = plan.roles.size();
    std::size_t moving = 0;
    for (std::uint32_t stream_id = 0; stream_id < nstreams; ++stream_id) {
      const PlanTemplate::StreamTemplate& st = tmpl.streams[stream_id];
      NetworkPlan::RoleSpec role;
      role.stream = stream_id;
      role.stationary = st.stationary;
      const LinForm* soak = st.soak.select(v);
      const LinForm* drain = st.drain.select(v);
      if (soak == nullptr || drain == nullptr) {
        raise(ErrorKind::Inconsistent,
              "computation process " + y.to_string() +
                  " lacks soak/drain for stream '" + st.name + "'");
      }
      role.soak = soak->eval(v);
      role.drain = drain->eval(v);
      const Port& port = ports[k * nstreams + stream_id];
      role.chan_in = port.in;
      role.chan_out = port.out;
      plan.channels[port.in].receiver = id;
      plan.channels[port.out].sender = id;
      if (!role.stationary) ++moving;
      // Conservation law: everything that enters a process leaves it.
      Int through = role.stationary ? role.soak + role.drain + 1
                                    : role.soak + spec.count + role.drain;
      if (through != port.pipe_count) {
        raise(ErrorKind::Inconsistent,
              "stream '" + st.name + "' at " + y.to_string() +
                  ": soak+uses+drain = " + std::to_string(through) +
                  " but the pipeline carries " +
                  std::to_string(port.pipe_count) + " elements");
      }
      plan.roles.push_back(std::move(role));
    }
    spec.role_end = plan.roles.size();
    plan.procs.push_back(std::move(spec));
    ++plan.comp_count;
    plan.max_par_ops = std::max(plan.max_par_ops, moving);
    plan.total_par_bound += std::max<std::size_t>(1, moving);
  }
  // Every i/o and buffer process has at most one op outstanding.
  plan.total_par_bound += plan.io_count + plan.buffer_count;
  plan.clock_count = clock_ids.size();
  return plan_ptr;
}

}  // namespace systolize
