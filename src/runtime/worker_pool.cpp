#include "runtime/worker_pool.hpp"

#include <algorithm>

namespace systolize {

WorkerPool::WorkerPool(unsigned max_threads) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  max_threads_ = max_threads == 0 ? hw : max_threads;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // The queue can only be non-empty here if a run() is still in flight,
    // which would be a caller bug (the pool must outlive its runs); any
    // remaining tasks are dropped.
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned WorkerPool::spawned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<unsigned>(threads_.size());
}

void WorkerPool::run(unsigned n, const std::function<void(unsigned)>& job) {
  if (n <= 1) {
    job(0);
    return;
  }
  Batch batch;
  batch.job = &job;
  batch.outstanding = n - 1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (unsigned i = 1; i < n; ++i) queue_.push_back(Task{&batch, i});
    // Lazily grow the pool toward the demand, up to the cap. Threads are
    // never retired: the whole point is reuse across runs.
    const std::size_t want =
        std::min<std::size_t>(max_threads_, threads_.size() + (n - 1));
    while (threads_.size() < want) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }
  work_cv_.notify_all();

  job(0);

  // The run is complete (a substrate run only returns from job(0) once
  // the network is drained or aborted — stragglers exit immediately).
  // Cancel every participant still sitting in the queue so the Batch on
  // this stack cannot be touched after we return, then wait out the ones
  // a pool thread already claimed.
  std::unique_lock<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->batch == &batch) {
      it = queue_.erase(it);
      --batch.outstanding;
    } else {
      ++it;
    }
  }
  batch.done.wait(lock, [&] { return batch.outstanding == 0; });
}

void WorkerPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      task = queue_.front();
      queue_.pop_front();
    }
    (*task.batch->job)(task.index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --task.batch->outstanding;
      // Notify under the lock: the Batch lives on the caller's stack and
      // is destroyed the moment the caller observes outstanding == 0, so
      // the notify must complete before this thread drops the mutex.
      task.batch->done.notify_one();
    }
  }
}

}  // namespace systolize
