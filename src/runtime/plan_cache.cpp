#include "runtime/plan_cache.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "runtime/bytecode.hpp"
#include "runtime/plan_template.hpp"
#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace systolize {
namespace {

bool in_box(const IntVec& y, const IntVec& lo, const IntVec& hi) {
  for (std::size_t i = 0; i < y.dim(); ++i) {
    if (y[i] < lo[i] || y[i] > hi[i]) return false;
  }
  return true;
}

/// Most-upstream box point of the line through y along `dir`.
IntVec anchor_of(const IntVec& y, const IntVec& dir, const IntVec& lo,
                 const IntVec& hi) {
  IntVec a = y;
  for (;;) {
    IntVec prev = a - dir;
    if (!in_box(prev, lo, hi)) return a;
    a = prev;
  }
}

std::string point_name(const std::string& prefix, const IntVec& y) {
  return prefix + y.to_string();
}

}  // namespace

// ----------------------------------------------------------- plan build

std::unique_ptr<NetworkPlan> build_plan(const CompiledProgram& program,
                                        const LoopNest& nest,
                                        const Env& sizes,
                                        const PlanShape& shape) {
  auto plan_ptr = std::make_unique<NetworkPlan>();
  NetworkPlan& plan = *plan_ptr;
  plan.body = nest.body();
  plan.increment = program.repeater.increment;

  const IntVec ps_min = program.ps.min.evaluate(sizes);
  const IntVec ps_max = program.ps.max.evaluate(sizes);
  plan.ps_min = ps_min;
  plan.ps_max = ps_max;

  // Partitioning: map a process-space point to a dense shared-clock id
  // (-1 when unpartitioned: every process gets its own clock). Ids are
  // assigned in first-use order, which follows the spawn order below.
  std::map<IntVec, std::int32_t, IntVecLess> clock_ids;
  auto clock_for = [&](const IntVec& y) -> std::int32_t {
    if (shape.partition_grid.dim() == 0) return -1;
    if (shape.partition_grid.dim() != y.dim()) {
      raise(ErrorKind::Validation,
            "partition grid must have one entry per process-space "
            "dimension");
    }
    IntVec block(y.dim());
    for (std::size_t i = 0; i < y.dim(); ++i) {
      Int extent = ps_max[i] - ps_min[i] + 1;
      Int g =
          std::max<Int>(1, std::min<Int>(shape.partition_grid[i], extent));
      block[i] = (y[i] - ps_min[i]) * g / extent;
    }
    auto [it, inserted] = clock_ids.emplace(
        block, static_cast<std::int32_t>(clock_ids.size()));
    (void)inserted;
    return it->second;
  };

  auto env_at = [&](const IntVec& y) {
    Env env = sizes;
    for (std::size_t i = 0; i < program.coords.size(); ++i) {
      env[program.coords[i].name()] = Rational(y[i]);
    }
    return env;
  };

  // Enumerate the PS box.
  std::vector<IntVec> box;
  {
    IntVec y = ps_min;
    for (;;) {
      box.push_back(y);
      std::size_t i = y.dim();
      bool done = true;
      while (i > 0) {
        --i;
        if (++y[i] <= ps_max[i]) {
          done = false;
          break;
        }
        y[i] = ps_min[i];
        if (i == 0) break;
      }
      if (done) break;
    }
  }

  std::map<IntVec, bool, IntVecLess> in_cs;
  for (const IntVec& y : box) {
    in_cs[y] = program.repeater.first.covers(env_at(y));
  }

  // Ports of each computation process, per stream, filled below.
  struct Port {
    std::int32_t in = -1;
    std::int32_t out = -1;
    Int pipe_count = 0;
  };
  std::map<IntVec, std::map<std::string, Port>, IntVecLess> ports;

  NetworkGraph& net = plan.graph;

  auto add_channel = [&](std::string name, std::uint32_t stream,
                         Int capacity) -> std::int32_t {
    auto id = static_cast<std::int32_t>(plan.channels.size());
    plan.channels.push_back(
        NetworkPlan::ChannelSpec{std::move(name), stream, capacity, -1, -1});
    return id;
  };

  for (std::uint32_t stream_id = 0; stream_id < program.streams.size();
       ++stream_id) {
    const StreamPlan& splan = program.streams[stream_id];
    plan.streams.push_back(splan.name);

    const IntVec& dir = splan.motion.direction;
    const Int q = splan.motion.denominator;
    const Int inner_buffers = shape.merge_internal_buffers ? 0 : q - 1;
    const Int hop_capacity = shape.channel_capacity +
                             (shape.merge_internal_buffers ? q - 1 : 0);

    // Group box points into pipes by their upstream anchor.
    std::map<IntVec, std::vector<IntVec>, IntVecLess> pipes;
    for (const IntVec& y : box) {
      pipes[anchor_of(y, dir, ps_min, ps_max)].push_back(y);
    }
    std::size_t pipe_idx = 0;
    for (auto& [a, points] : pipes) {
      // Order the pipe's points from the anchor downstream.
      std::sort(points.begin(), points.end(),
                [&dir](const IntVec& p1, const IntVec& p2) {
                  return p1.dot(dir) < p2.dot(dir);
                });
      Env env = env_at(a);
      const AffineExpr* count_expr = splan.io.count_s.select(env);
      Int count =
          count_expr == nullptr ? 0 : count_expr->evaluate(env).to_integer();

      // Element identities in pipeline order, as one flat slice shared by
      // the pipe's input and output processes.
      const std::size_t elem_begin = plan.elems.size();
      if (count > 0) {
        const AffinePoint* first_expr = splan.io.first_s.select(env);
        if (first_expr == nullptr) {
          raise(ErrorKind::Inconsistent,
                "stream '" + splan.name + "': count_s > 0 but first_s null");
        }
        IntVec w = first_expr->evaluate(env);
        for (Int t = 0; t < count; ++t) {
          plan.elems.push_back(w);
          w += splan.io.increment_s;
        }
      }
      const std::size_t elem_end = plan.elems.size();

      // Channel chain: IN -> [bufs] -> y0 -> [bufs] -> y1 ... -> OUT.
      const std::string cname =
          splan.name + "[" + std::to_string(pipe_idx) + "]";
      std::int32_t prev =
          add_channel(cname + ".0", stream_id, shape.channel_capacity);
      const std::int32_t head = prev;
      std::size_t link = 1;
      const std::string in_name = point_name("in:" + splan.name + ":", a);
      net.add_node(in_name, NetworkGraph::NodeKind::Input);
      std::string last_node = in_name;
      auto link_node = [&](const std::string& node,
                           NetworkGraph::NodeKind kind, std::int32_t via) {
        net.add_node(node, kind);
        net.add_edge(last_node, node, plan.channels[via].name, splan.name);
        last_node = node;
      };
      auto add_pass = [&](std::string name, std::int32_t in,
                          std::int32_t out, const IntVec& y) {
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = std::move(name);
        spec.kind = NetworkPlan::ProcKind::Pass;
        spec.clock = clock_for(y);
        spec.stream = stream_id;
        spec.chan_in = in;
        spec.chan_out = out;
        spec.count = count;
        spec.place = y;
        plan.procs.push_back(std::move(spec));
        plan.channels[in].receiver = id;
        plan.channels[out].sender = id;
        ++plan.buffer_count;
      };
      for (const IntVec& y : points) {
        // Internal buffers in front of every process on the pipe
        // (Sect. 7.6 and the regularity remark of D.1.6).
        for (Int bi = 0; bi < inner_buffers; ++bi) {
          std::int32_t next =
              add_channel(cname + "." + std::to_string(link++), stream_id,
                          shape.channel_capacity);
          const std::string bname =
              point_name("buf:" + splan.name + ":", y) + "#" +
              std::to_string(bi);
          link_node(bname, NetworkGraph::NodeKind::Buffer, prev);
          add_pass(bname, prev, next, y);
          prev = next;
        }
        std::int32_t next = add_channel(
            cname + "." + std::to_string(link++), stream_id, hop_capacity);
        if (in_cs.at(y)) {
          ports[y][splan.name] = Port{prev, next, count};
          link_node(point_name("comp:", y),
                    NetworkGraph::NodeKind::Computation, prev);
        } else {
          // External buffer process: pass the whole pipeline (Eq. 10) —
          // zero elements when no pipe of this stream crosses the point.
          const std::string xname =
              point_name("xbuf:" + splan.name + ":", y);
          link_node(xname, NetworkGraph::NodeKind::Buffer, prev);
          add_pass(xname, prev, next, y);
        }
        prev = next;
      }

      // Input and output i/o processes for this pipe.
      {
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = in_name;
        spec.kind = NetworkPlan::ProcKind::Input;
        spec.clock = clock_for(a);
        spec.stream = stream_id;
        spec.chan_out = head;
        spec.count = count;
        spec.elem_begin = elem_begin;
        spec.elem_end = elem_end;
        spec.place = a;
        plan.procs.push_back(std::move(spec));
        plan.channels[head].sender = id;
      }
      {
        const std::string out_name =
            point_name("out:" + splan.name + ":", points.back());
        link_node(out_name, NetworkGraph::NodeKind::Output, prev);
        auto id = static_cast<std::int32_t>(plan.procs.size());
        NetworkPlan::ProcSpec spec;
        spec.name = out_name;
        spec.kind = NetworkPlan::ProcKind::Output;
        spec.clock = clock_for(points.back());
        spec.stream = stream_id;
        spec.chan_in = prev;
        spec.count = count;
        spec.elem_begin = elem_begin;
        spec.elem_end = elem_end;
        spec.place = points.back();
        plan.procs.push_back(std::move(spec));
        plan.channels[prev].receiver = id;
      }
      plan.io_count += 2;
      ++pipe_idx;
    }
  }

  // Computation processes.
  for (const IntVec& y : box) {
    if (!in_cs.at(y)) continue;
    Env env = env_at(y);
    auto id = static_cast<std::int32_t>(plan.procs.size());
    NetworkPlan::ProcSpec spec;
    spec.name = point_name("comp:", y);
    spec.kind = NetworkPlan::ProcKind::Comp;
    spec.clock = clock_for(y);
    spec.count =
        program.repeater.count.select(env)->evaluate(env).to_integer();
    spec.first_x = program.repeater.first.select(env)->evaluate(env);
    spec.coords = y;
    spec.place = y;
    spec.role_begin = plan.roles.size();
    std::size_t moving = 0;
    for (std::uint32_t stream_id = 0; stream_id < program.streams.size();
         ++stream_id) {
      const StreamPlan& splan = program.streams[stream_id];
      NetworkPlan::RoleSpec role;
      role.stream = stream_id;
      role.stationary = splan.motion.stationary;
      const AffineExpr* soak = splan.soak.select(env);
      const AffineExpr* drain = splan.drain.select(env);
      if (soak == nullptr || drain == nullptr) {
        raise(ErrorKind::Inconsistent,
              "computation process " + y.to_string() +
                  " lacks soak/drain for stream '" + splan.name + "'");
      }
      role.soak = soak->evaluate(env).to_integer();
      role.drain = drain->evaluate(env).to_integer();
      const Port& port = ports.at(y).at(splan.name);
      role.chan_in = port.in;
      role.chan_out = port.out;
      plan.channels[port.in].receiver = id;
      plan.channels[port.out].sender = id;
      if (!role.stationary) ++moving;
      // Conservation law: everything that enters a process leaves it.
      Int through = role.stationary ? role.soak + role.drain + 1
                                    : role.soak + spec.count + role.drain;
      if (through != port.pipe_count) {
        raise(ErrorKind::Inconsistent,
              "stream '" + splan.name + "' at " + y.to_string() +
                  ": soak+uses+drain = " + std::to_string(through) +
                  " but the pipeline carries " +
                  std::to_string(port.pipe_count) + " elements");
      }
      plan.roles.push_back(std::move(role));
    }
    spec.role_end = plan.roles.size();
    plan.procs.push_back(std::move(spec));
    ++plan.comp_count;
    plan.max_par_ops = std::max(plan.max_par_ops, moving);
    plan.total_par_bound += std::max<std::size_t>(1, moving);
  }
  // Every i/o and buffer process has at most one op outstanding.
  plan.total_par_bound += plan.io_count + plan.buffer_count;
  plan.clock_count = clock_ids.size();
  return plan_ptr;
}

// --------------------------------------------------------- memory_bytes

namespace {

std::size_t bytes_of(const std::string& s) { return s.capacity(); }
std::size_t bytes_of(const IntVec& v) {
  return v.comps().capacity() * sizeof(Int);
}

}  // namespace

std::size_t NetworkPlan::memory_bytes() const {
  std::size_t n = sizeof(NetworkPlan);
  n += streams.capacity() * sizeof(std::string);
  for (const std::string& s : streams) n += bytes_of(s);
  n += channels.capacity() * sizeof(ChannelSpec);
  for (const ChannelSpec& c : channels) n += bytes_of(c.name);
  n += procs.capacity() * sizeof(ProcSpec);
  for (const ProcSpec& p : procs) {
    n += bytes_of(p.name) + bytes_of(p.first_x) + bytes_of(p.coords) +
         bytes_of(p.place);
  }
  n += roles.capacity() * sizeof(RoleSpec);
  n += elems.capacity() * sizeof(IntVec);
  for (const IntVec& e : elems) n += bytes_of(e);
  n += bytes_of(increment) + bytes_of(ps_min) + bytes_of(ps_max);
  n += graph.nodes.capacity() * sizeof(NetworkGraph::Node);
  for (const NetworkGraph::Node& node : graph.nodes) n += bytes_of(node.name);
  n += graph.edges.capacity() * sizeof(NetworkGraph::Edge);
  for (const NetworkGraph::Edge& e : graph.edges) {
    n += bytes_of(e.from) + bytes_of(e.to) + bytes_of(e.channel) +
         bytes_of(e.stream);
  }
  return n;
}

// ------------------------------------------------------------ PlanCache

namespace {

std::string template_key(const CompiledProgram& program,
                         const PlanShape& shape) {
  std::ostringstream key;
  key << "g" << program.generation << "|cap=" << shape.channel_capacity
      << "|merge=" << shape.merge_internal_buffers
      << "|grid=" << shape.partition_grid.to_string();
  return key.str();
}

std::string plan_key(const std::string& tmpl_key, const Env& sizes) {
  std::ostringstream key;
  key << tmpl_key;
  for (const auto& [name, value] : sizes) {
    key << '|' << name << '=' << value.to_string();
  }
  return key.str();
}

}  // namespace

/// One-shot compilation slot per template key: concurrent callers of the
/// same key rendezvous on the once_flag instead of compiling twice. If the
/// compiler throws, the flag stays unset and the next caller retries.
struct PlanCache::TemplateSlot {
  std::once_flag once;
  std::shared_ptr<const PlanTemplate> tmpl;
};

PlanCache::PlanCache(std::size_t byte_budget) : budget_(byte_budget) {}

std::shared_ptr<const PlanTemplate> PlanCache::lookup_template(
    const CompiledProgram& program, const LoopNest& nest,
    const PlanShape& shape, LookupStats* stats) {
  const std::string key = template_key(program, shape);
  std::shared_ptr<TemplateSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] =
        templates_.emplace(key, std::make_shared<TemplateSlot>());
    slot = it->second;
  }
  bool compiled_here = false;
  std::call_once(slot->once, [&] {
    slot->tmpl = compile_template(program, nest, shape);
    compiled_here = true;
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (compiled_here) {
      ++template_compiles_;
    } else {
      ++template_hits_;
    }
  }
  if (stats != nullptr) stats->template_hit = !compiled_here;
  return slot->tmpl;
}

std::shared_ptr<const NetworkPlan> PlanCache::lookup_or_build(
    const CompiledProgram& program, const LoopNest& nest, const Env& sizes,
    const PlanShape& shape, LookupStats* stats) {
  const std::string tkey = template_key(program, shape);
  const std::string key = plan_key(tkey, sizes);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      ++hits_;
      // Freshen the entry: splice to the front of the LRU list.
      lru_.splice(lru_.begin(), lru_, it->second);
      if (stats != nullptr) {
        stats->plan_hit = true;
        stats->template_hit = true;
      }
      return it->second->plan;
    }
  }
  // Miss: compile (or fetch) the template, then expand outside the lock —
  // concurrent callers for different sizes should not serialize on the
  // cheap integer expansion. A racing duplicate expansion of the same key
  // is harmless (first insert wins); only template compilation is
  // deduplicated, because only it is expensive.
  std::shared_ptr<const PlanTemplate> tmpl =
      lookup_template(program, nest, shape, stats);
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const NetworkPlan> built = expand_template(*tmpl, sizes);
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (stats != nullptr) {
    stats->expand_ns = static_cast<std::uint64_t>(elapsed);
  }
  std::lock_guard<std::mutex> lock(mu_);
  expand_ns_ += static_cast<std::uint64_t>(elapsed);
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    if (stats != nullptr) stats->plan_hit = true;
    return it->second->plan;
  }
  ++misses_;
  const std::size_t plan_bytes = built->memory_bytes();
  lru_.push_front(PlanEntry{key, std::move(built), plan_bytes});
  plans_.emplace(key, lru_.begin());
  bytes_ += plan_bytes;
  // Evict least-recently-used plans down to the budget; the entry just
  // inserted is always kept (handed-out shared_ptrs stay valid either
  // way — eviction only drops the cache's reference).
  evict_to_budget_locked();
  return lru_.front().plan;
}

void PlanCache::evict_to_budget_locked() {
  while (bytes_ > budget_ && lru_.size() > 1) {
    PlanEntry& victim = lru_.back();
    bytes_ -= victim.bytes;
    plans_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::shared_ptr<const BytecodeProgram> PlanCache::lookup_or_lower(
    std::shared_ptr<const NetworkPlan> plan, BytecodeStats* stats) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = bc_index_.find(plan.get());
    if (it != bc_index_.end()) {
      ++bc_hits_;
      bc_lru_.splice(bc_lru_.begin(), bc_lru_, it->second);
      if (stats != nullptr) stats->hit = true;
      return it->second->program;
    }
  }
  // Miss: lower outside the lock (concurrent callers for different plans
  // should not serialize; a racing duplicate of the same plan is harmless
  // — first insert wins, like the plan level).
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const BytecodeProgram> lowered = lower_plan(*plan);
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (stats != nullptr) stats->lower_ns = static_cast<std::uint64_t>(elapsed);
  std::lock_guard<std::mutex> lock(mu_);
  lower_ns_ += static_cast<std::uint64_t>(elapsed);
  auto it = bc_index_.find(plan.get());
  if (it != bc_index_.end()) {
    ++bc_hits_;
    bc_lru_.splice(bc_lru_.begin(), bc_lru_, it->second);
    if (stats != nullptr) stats->hit = true;
    return it->second->program;
  }
  ++bc_misses_;
  const std::size_t program_bytes = lowered->memory_bytes();
  bc_lru_.push_front(BytecodeEntry{plan.get(), std::move(plan),
                                   std::move(lowered), program_bytes});
  bc_index_.emplace(bc_lru_.front().key, bc_lru_.begin());
  bc_bytes_ += program_bytes;
  evict_bytecode_locked();
  return bc_lru_.front().program;
}

void PlanCache::evict_bytecode_locked() {
  while (bc_bytes_ > budget_ && bc_lru_.size() > 1) {
    BytecodeEntry& victim = bc_lru_.back();
    bc_bytes_ -= victim.bytes;
    bc_index_.erase(victim.key);
    bc_lru_.pop_back();
    ++bc_evictions_;
  }
}

std::size_t PlanCache::byte_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

void PlanCache::set_byte_budget(std::size_t byte_budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = byte_budget;
  evict_to_budget_locked();
  evict_bytecode_locked();
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return plans_.size();
}

std::size_t PlanCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::size_t PlanCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t PlanCache::template_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return template_hits_;
}

std::size_t PlanCache::template_compiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return template_compiles_;
}

std::size_t PlanCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::size_t PlanCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::uint64_t PlanCache::expand_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expand_ns_;
}

std::size_t PlanCache::bytecode_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bc_index_.size();
}

std::size_t PlanCache::bytecode_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bc_hits_;
}

std::size_t PlanCache::bytecode_misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bc_misses_;
}

std::size_t PlanCache::bytecode_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bc_evictions_;
}

std::size_t PlanCache::bytecode_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bc_bytes_;
}

std::uint64_t PlanCache::lower_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lower_ns_;
}

// ------------------------------------------------------- plan execution

namespace {

// Coroutine bodies take every datum BY VALUE so it is copied into the
// coroutine frame (lambda captures would dangle once spawn() returns).
// Pointed-to storage (the plan, the channel table, the flat value
// buffers) is owned by the caller and outlives the run.

Task plan_input_body(Ctx ctx, Channel* chan, const Value* values,
                     Int count) {
  for (Int i = 0; i < count; ++i) {
    co_await ctx.send(*chan, values[i]);
  }
}

Task plan_output_flat_body(Ctx ctx, Channel* chan, Value* out, Int count) {
  for (Int i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*chan, v);
    out[i] = v;
  }
}

Task plan_output_store_body(Ctx ctx, Channel* chan, const NetworkPlan* plan,
                            std::uint32_t pi, IndexedStore* store) {
  const NetworkPlan::ProcSpec& spec = plan->procs[pi];
  const std::string& var = plan->streams[spec.stream];
  for (std::size_t e = spec.elem_begin; e < spec.elem_end; ++e) {
    Value v = 0;
    co_await ctx.recv(*chan, v);
    store->set(var, plan->elems[e], v);
  }
}

Task plan_pass_body(Ctx ctx, Channel* in, Channel* out, Int count) {
  for (Int i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*in, v);
    co_await ctx.send(*out, v);
  }
}

Task plan_comp_body(Ctx ctx, const NetworkPlan* plan, std::uint32_t pi,
                    Channel* const* chans, Trace* trace) {
  const NetworkPlan::ProcSpec& spec = plan->procs[pi];
  const std::size_t nroles = spec.role_end - spec.role_begin;
  // The basic statement still consumes its operands as a name->value map
  // (the IndexedBody interface); bind one stable slot per stream up
  // front so the communication ops never look names up again.
  std::map<std::string, Value> vals;
  std::vector<Value*> slot(nroles);
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = plan->roles[spec.role_begin + i];
    slot[i] = &vals[plan->streams[role.stream]];
  }
  auto role_at = [plan, &spec](std::size_t i) -> const NetworkPlan::RoleSpec& {
    return plan->roles[spec.role_begin + i];
  };
  // Prologue, in the phase order of the paper's final programs (D.1.7):
  // first load every stationary stream, then soak every moving one.
  // Stationary channels are touched only in load/recover and moving ones
  // only in soak/repeater/drain, so this phase order is globally
  // consistent across processes — mixing them deadlocks (a process
  // recovering a stationary stream would block a neighbour still waiting
  // on a moving drain).
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (!role.stationary) continue;
    Channel& in = *chans[role.chan_in];
    Channel& out = *chans[role.chan_out];
    co_await ctx.recv(in, *slot[i]);
    for (Int k = 0; k < role.drain; ++k) {  // loading passes = drain_s
      Value v = 0;
      co_await ctx.recv(in, v);
      co_await ctx.send(out, v);
    }
  }
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    Channel& in = *chans[role.chan_in];
    Channel& out = *chans[role.chan_out];
    for (Int k = 0; k < role.soak; ++k) {
      Value v = 0;
      co_await ctx.recv(in, v);
      co_await ctx.send(out, v);
    }
  }
  // The repeater: receive every moving stream in par, compute, send in
  // par. The par sets live in the frame and are reused across iterations
  // (only the send payloads are refreshed) — no per-iteration allocation.
  std::vector<CommOp> recvs;
  std::vector<CommOp> sends;
  std::vector<Value*> moving_slot;
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    recvs.push_back(ctx.recv_op(*chans[role.chan_in], *slot[i]));
    sends.push_back(ctx.send_op(*chans[role.chan_out], 0));
    moving_slot.push_back(slot[i]);
  }
  IntVec x = spec.first_x;
  for (Int iter = 0; iter < spec.count; ++iter) {
    if (!recvs.empty()) co_await ctx.par(recvs.data(), recvs.size());
    plan->body(x, vals);
    ctx.tick_statement();
    if (trace != nullptr) {
      trace->statements.push_back(
          StatementEvent{spec.coords, iter, ctx.process().time()});
    }
    if (!sends.empty()) {
      for (std::size_t i = 0; i < sends.size(); ++i) {
        sends[i].value = *moving_slot[i];
      }
      co_await ctx.par(sends.data(), sends.size());
    }
    x += plan->increment;
  }
  // Epilogue, mirroring the prologue's phase order (D.1.7: "pass c,
  // n-col" before "recover a, col"): drain every moving stream first,
  // recover every stationary one last.
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (role.stationary) continue;
    Channel& in = *chans[role.chan_in];
    Channel& out = *chans[role.chan_out];
    for (Int k = 0; k < role.drain; ++k) {
      Value v = 0;
      co_await ctx.recv(in, v);
      co_await ctx.send(out, v);
    }
  }
  for (std::size_t i = 0; i < nroles; ++i) {
    const NetworkPlan::RoleSpec& role = role_at(i);
    if (!role.stationary) continue;
    Channel& in = *chans[role.chan_in];
    Channel& out = *chans[role.chan_out];
    for (Int k = 0; k < role.soak; ++k) {  // recovery passes = soak_s
      Value v = 0;
      co_await ctx.recv(in, v);
      co_await ctx.send(out, v);
    }
    co_await ctx.send(out, *slot[i]);
  }
}

}  // namespace

Process& spawn_plan_proc(Scheduler& sched, std::uint32_t pi,
                         Channel* const* chans, Clock* clocks,
                         const PlanBindings& bindings) {
  const NetworkPlan& plan = *bindings.plan;
  const NetworkPlan::ProcSpec& spec = plan.procs[pi];
  Clock* clock = spec.clock >= 0 ? &clocks[spec.clock] : nullptr;
  switch (spec.kind) {
    case NetworkPlan::ProcKind::Input: {
      Channel* out = chans[spec.chan_out];
      const Value* values = bindings.in_values + spec.elem_begin;
      const Int count = spec.count;
      return sched.spawn(
          spec.name,
          [out, values, count](Ctx ctx) {
            return plan_input_body(ctx, out, values, count);
          },
          clock);
    }
    case NetworkPlan::ProcKind::Output: {
      Channel* in = chans[spec.chan_in];
      if (bindings.out_values != nullptr) {
        Value* out = bindings.out_values + spec.elem_begin;
        const Int count = spec.count;
        return sched.spawn(
            spec.name,
            [in, out, count](Ctx ctx) {
              return plan_output_flat_body(ctx, in, out, count);
            },
            clock);
      }
      const NetworkPlan* p = bindings.plan;
      IndexedStore* store = bindings.store;
      return sched.spawn(
          spec.name,
          [in, p, pi, store](Ctx ctx) {
            return plan_output_store_body(ctx, in, p, pi, store);
          },
          clock);
    }
    case NetworkPlan::ProcKind::Pass: {
      Channel* in = chans[spec.chan_in];
      Channel* out = chans[spec.chan_out];
      const Int count = spec.count;
      return sched.spawn(
          spec.name,
          [in, out, count](Ctx ctx) {
            return plan_pass_body(ctx, in, out, count);
          },
          clock);
    }
    case NetworkPlan::ProcKind::Comp:
      break;
  }
  const NetworkPlan* p = bindings.plan;
  Trace* trace = bindings.trace;
  return sched.spawn(
      spec.name,
      [p, pi, chans, trace](Ctx ctx) {
        return plan_comp_body(ctx, p, pi, chans, trace);
      },
      clock);
}

}  // namespace systolize
