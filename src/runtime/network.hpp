// Topology capture: the instantiated process network as a graph, for
// inspection and Graphviz export — the picture of the array the paper
// draws by hand (hex arrays, linear pipelines with buffers).
#pragma once

#include <string>
#include <vector>

#include "numeric/int_vec.hpp"

namespace systolize {

struct NetworkGraph {
  enum class NodeKind { Computation, Input, Output, Buffer };

  struct Node {
    std::string name;
    NodeKind kind = NodeKind::Computation;
  };

  struct Edge {
    std::string from;
    std::string to;
    std::string channel;
    std::string stream;
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;

  void add_node(std::string name, NodeKind kind);
  void add_edge(std::string from, std::string to, std::string channel,
                std::string stream);
  [[nodiscard]] std::size_t count(NodeKind kind) const;
};

/// Graphviz rendering: computation processes as boxes, i/o as houses,
/// buffers as small circles; one colour per stream's channels.
[[nodiscard]] std::string to_dot(const NetworkGraph& graph);

}  // namespace systolize
