#include "runtime/vm.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <utility>

#include "runtime/metrics.hpp"
#include "runtime/worker_pool.hpp"

// Threaded dispatch (GCC/Clang labels-as-values); the portable fallback
// compiles the same handler bodies under a switch.
#if defined(__GNUC__) || defined(__clang__)
#define SYSTOLIZE_VM_THREADED 1
#endif

namespace systolize {
namespace {

/// A parked communication: who, when it was issued, and where the value
/// lives. `loc >= 0` names a register; `loc < 0` encodes a flat element
/// offset as -(offset)-1 — into the in buffer for sends, out for recvs.
struct Parked {
  std::uint32_t proc = 0;
  std::int64_t loc = 0;
  Int issue = 0;
};

/// Channel state: pure rendezvous (the only shape execute() lowers), so
/// no buffer — and the plan's single-writer/single-reader structure means
/// at most one outstanding op per side, so parking is one slot, not a
/// vector.
struct VmChan {
  Parked send, recv;
  bool send_valid = false;
  bool recv_valid = false;
  Int transfers = 0;
};

/// Process resume state: the continuation is stored *before* a park, so
/// waking a process is just re-entering the dispatch loop at (pc, iter,
/// phase) — no coroutine frame, no handle, no blocked-on bookkeeping.
struct VmProc {
  std::uint32_t pc = 0;
  Int iter = 0;           ///< internal loop index of the current insn
  std::uint8_t phase = 0; ///< Pass: 0 = recv next, 1 = send next
  Int loop_iter = 0;      ///< repeater trip counter (one loop per proc)
  Int pending = 0;        ///< undone ops of the current par set
  Int time = 0;
  Int sends = 0;
  Int recvs = 0;
  Int statements = 0;
  bool finished = false;
  bool in_ready = false;
};

class Vm {
 public:
  Vm(const BytecodeProgram& prog, const NetworkPlan& plan, const Value* in,
     Value* out, std::size_t lane_stride, std::size_t lane_begin,
     std::size_t lane_end)
      : prog_(prog),
        plan_(plan),
        in_(in),
        out_(out),
        stride_(lane_stride),
        lane0_(lane_begin),
        nlanes_(lane_end - lane_begin) {
    procs_.resize(plan.procs.size());
    chans_.resize(plan.channels.size());
    regs_.assign(prog.num_regs * nlanes_, 0);
    comps_.resize(prog.comps.size());
    for (std::size_t i = 0; i < prog.comps.size(); ++i) {
      const BytecodeProgram::CompMeta& meta = prog.comps[i];
      CompScratch& cs = comps_[i];
      cs.x = meta.first_x;
      cs.slots.reserve(meta.slot_reg.size());
      for (std::uint32_t s : meta.slot_stream) {
        cs.slots.push_back(&cs.vals[plan.streams[s]]);
      }
    }
  }

  VmResult run(const VmRunOptions& opt) {
    const std::size_t nprocs = procs_.size();
    ready_.reserve(nprocs);
    batch_.reserve(nprocs);
    // Initial ready queue = spawn order, exactly as Scheduler::spawn
    // enqueues processes.
    for (std::uint32_t pid = 0; pid < nprocs; ++pid) {
      procs_[pid].pc = prog_.procs[pid].begin;
      make_ready(pid);
    }
    Int round = 0;
    while (!ready_.empty()) {
      if (opt.cancel != nullptr &&
          opt.cancel->load(std::memory_order_relaxed)) {
        raise_vm_stall(opt.cancel_reason, opt.cancel_kind);
      }
      if (opt.max_rounds > 0 && round >= opt.max_rounds) {
        raise_vm_stall("watchdog: round budget of " +
                           std::to_string(opt.max_rounds) +
                           " exhausted (livelock?)",
                       ErrorKind::Timeout);
      }
      // One round = the ready entries present at round start (the fast
      // scheduler's double-buffered batch boundary), so scheduler_rounds
      // matches the interpreted paths bit for bit.
      std::swap(ready_, batch_);
      for (std::uint32_t pid : batch_) {
        VmProc& p = procs_[pid];
        p.in_ready = false;
        if (p.finished) continue;
        resume(pid);
      }
      batch_.clear();
      ++round;
    }
    for (const VmProc& p : procs_) {
      if (!p.finished) raise_vm_stall("deadlock", ErrorKind::Runtime);
    }
    VmResult res;
    res.rounds = round;
    for (const VmProc& p : procs_) {
      res.makespan = std::max(res.makespan, p.time);
      res.statements += p.statements;
    }
    res.channel_transfers.reserve(chans_.size());
    for (const VmChan& c : chans_) {
      res.channel_transfers.push_back(c.transfers);
      res.total_transfers += c.transfers;
    }
    return res;
  }

 private:
  struct CompScratch {
    IntVec x;  ///< current statement point of the repeater chord
    std::map<std::string, Value> vals;
    std::vector<Value*> slots;  ///< into vals, aligned with slot_reg
  };

  void make_ready(std::uint32_t pid) {
    VmProc& p = procs_[pid];
    if (p.finished || p.in_ready) return;
    p.in_ready = true;
    ready_.push_back(pid);
  }

  [[nodiscard]] const Value* send_src(std::int64_t loc) const {
    if (loc >= 0) {
      return regs_.data() + static_cast<std::size_t>(loc) * nlanes_;
    }
    return in_ + static_cast<std::size_t>(-(loc + 1)) * stride_ + lane0_;
  }

  [[nodiscard]] Value* recv_dst(std::int64_t loc) {
    if (loc >= 0) {
      return regs_.data() + static_cast<std::size_t>(loc) * nlanes_;
    }
    return out_ + static_cast<std::size_t>(-(loc + 1)) * stride_ + lane0_;
  }

  /// Move all lanes of a rendezvous value from the sender's location to
  /// the receiver's. Lanes are contiguous in both views (instance-major
  /// layout), so this is one dense copy of the whole batch.
  void transfer(std::int64_t send_loc, std::int64_t recv_loc) {
    const Value* src = send_src(send_loc);
    Value* dst = recv_dst(recv_loc);
    for (std::size_t k = 0; k < nlanes_; ++k) dst[k] = src[k];
  }

  /// Attempt a send; on rendezvous both sides advance to
  /// max(issue times) + 1 — the exact clock math of Channel::try_complete.
  bool attempt_send(std::int32_t chan, VmProc& p, std::int64_t loc,
                    Int issue) {
    VmChan& ch = chans_[static_cast<std::size_t>(chan)];
    if (!ch.recv_valid) return false;
    const Int t = std::max(issue, ch.recv.issue) + 1;
    p.time = std::max(p.time, t);
    ++p.sends;
    ++ch.transfers;
    transfer(loc, ch.recv.loc);
    VmProc& r = procs_[ch.recv.proc];
    r.time = std::max(r.time, t);
    ++r.recvs;
    ch.recv_valid = false;
    if (--r.pending == 0) make_ready(ch.recv.proc);
    return true;
  }

  bool attempt_recv(std::int32_t chan, VmProc& p, std::int64_t loc,
                    Int issue) {
    VmChan& ch = chans_[static_cast<std::size_t>(chan)];
    if (!ch.send_valid) return false;
    const Int t = std::max(issue, ch.send.issue) + 1;
    transfer(ch.send.loc, loc);
    p.time = std::max(p.time, t);
    ++p.recvs;
    ++ch.transfers;
    VmProc& s = procs_[ch.send.proc];
    s.time = std::max(s.time, t);
    ++s.sends;
    ch.send_valid = false;
    if (--s.pending == 0) make_ready(ch.send.proc);
    return true;
  }

  void park_send(std::int32_t chan, std::uint32_t pid, std::int64_t loc,
                 Int issue) {
    VmChan& ch = chans_[static_cast<std::size_t>(chan)];
    ch.send = Parked{pid, loc, issue};
    ch.send_valid = true;
  }

  void park_recv(std::int32_t chan, std::uint32_t pid, std::int64_t loc,
                 Int issue) {
    VmChan& ch = chans_[static_cast<std::size_t>(chan)];
    ch.recv = Parked{pid, loc, issue};
    ch.recv_valid = true;
  }

  void resume(std::uint32_t pid);

  [[noreturn]] void raise_vm_stall(const std::string& reason,
                                   ErrorKind kind) const;

  const BytecodeProgram& prog_;
  const NetworkPlan& plan_;
  const Value* in_;
  Value* out_;
  std::size_t stride_;
  std::size_t lane0_;
  std::size_t nlanes_;
  std::vector<VmProc> procs_;
  std::vector<VmChan> chans_;
  std::vector<Value> regs_;  ///< lane-major: regs_[r * nlanes_ + lane]
  std::vector<CompScratch> comps_;
  std::vector<std::uint32_t> ready_;
  std::vector<std::uint32_t> batch_;
};

#ifdef SYSTOLIZE_VM_THREADED
#define VM_DISPATCH()                                         \
  do {                                                        \
    insn = &code[p.pc];                                       \
    goto* kJump[static_cast<std::size_t>(insn->op)];          \
  } while (0)
#define VM_CASE(name) lab_##name:
#else
#define VM_DISPATCH() goto dispatch
#define VM_CASE(name) case BytecodeProgram::Op::name:
#endif

/// Run one process until it parks (a communication found no counterpart)
/// or halts. The continuation state (pc, iter, phase) is advanced BEFORE
/// any park, so re-entry after the counterpart completes the parked op
/// simply dispatches the next action.
void Vm::resume(std::uint32_t pid) {
  VmProc& p = procs_[pid];
  const BytecodeProgram::Insn* code = prog_.code.data();
  const BytecodeProgram::ParEntry* par = prog_.par.data();
  const BytecodeProgram::Insn* insn;
#ifdef SYSTOLIZE_VM_THREADED
  static const void* const kJump[] = {
      &&lab_SendIn, &&lab_RecvOut, &&lab_Pass,    &&lab_RecvReg,
      &&lab_SendReg, &&lab_ParRecv, &&lab_ParSend, &&lab_Compute,
      &&lab_LoopEnd, &&lab_Halt};
  VM_DISPATCH();
#else
dispatch:
  insn = &code[p.pc];
  switch (insn->op) {
#endif

  VM_CASE(SendIn) {
    while (p.iter < insn->count) {
      const Int issue = p.time;
      const std::int64_t loc =
          -(static_cast<std::int64_t>(insn->b) + p.iter) - 1;
      ++p.iter;
      if (!attempt_send(insn->a, p, loc, issue)) {
        park_send(insn->a, pid, loc, issue);
        p.pending = 1;
        return;
      }
    }
    p.iter = 0;
    ++p.pc;
  }
  VM_DISPATCH();

  VM_CASE(RecvOut) {
    while (p.iter < insn->count) {
      const Int issue = p.time;
      const std::int64_t loc =
          -(static_cast<std::int64_t>(insn->b) + p.iter) - 1;
      ++p.iter;
      if (!attempt_recv(insn->a, p, loc, issue)) {
        park_recv(insn->a, pid, loc, issue);
        p.pending = 1;
        return;
      }
    }
    p.iter = 0;
    ++p.pc;
  }
  VM_DISPATCH();

  VM_CASE(Pass) {
    while (p.iter < insn->count) {
      if (p.phase == 0) {
        const Int issue = p.time;
        p.phase = 1;
        if (!attempt_recv(insn->a, p, insn->c, issue)) {
          park_recv(insn->a, pid, insn->c, issue);
          p.pending = 1;
          return;
        }
      }
      const Int issue = p.time;
      p.phase = 0;
      ++p.iter;
      if (!attempt_send(insn->b, p, insn->c, issue)) {
        park_send(insn->b, pid, insn->c, issue);
        p.pending = 1;
        return;
      }
    }
    p.iter = 0;
    ++p.pc;
  }
  VM_DISPATCH();

  VM_CASE(RecvReg) {
    const Int issue = p.time;
    ++p.pc;
    if (!attempt_recv(insn->a, p, insn->c, issue)) {
      park_recv(insn->a, pid, insn->c, issue);
      p.pending = 1;
      return;
    }
  }
  VM_DISPATCH();

  VM_CASE(SendReg) {
    const Int issue = p.time;
    ++p.pc;
    if (!attempt_send(insn->a, p, insn->c, issue)) {
      park_send(insn->a, pid, insn->c, issue);
      p.pending = 1;
      return;
    }
  }
  VM_DISPATCH();

  VM_CASE(ParRecv) {
    // The whole set is issued at the owner's current time before any op
    // is attempted (CommAwaiter::await_ready's ordering: an earlier op's
    // rendezvous must not advance a later op's issue time).
    const Int now = p.time;
    Int undone = 0;
    for (std::int32_t j = 0; j < insn->b; ++j) {
      const BytecodeProgram::ParEntry& e = par[insn->a + j];
      if (!attempt_recv(e.chan, p, e.reg, now)) {
        park_recv(e.chan, pid, e.reg, now);
        ++undone;
      }
    }
    ++p.pc;
    if (undone > 0) {
      p.pending = undone;
      return;
    }
  }
  VM_DISPATCH();

  VM_CASE(ParSend) {
    const Int now = p.time;
    Int undone = 0;
    for (std::int32_t j = 0; j < insn->b; ++j) {
      const BytecodeProgram::ParEntry& e = par[insn->a + j];
      if (!attempt_send(e.chan, p, e.reg, now)) {
        park_send(e.chan, pid, e.reg, now);
        ++undone;
      }
    }
    ++p.pc;
    if (undone > 0) {
      p.pending = undone;
      return;
    }
  }
  VM_DISPATCH();

  VM_CASE(Compute) {
    CompScratch& cs = comps_[static_cast<std::size_t>(insn->a)];
    const BytecodeProgram::CompMeta& meta =
        prog_.comps[static_cast<std::size_t>(insn->a)];
    const std::size_t nslots = meta.slot_reg.size();
    for (std::size_t k = 0; k < nlanes_; ++k) {
      for (std::size_t i = 0; i < nslots; ++i) {
        *cs.slots[i] =
            regs_[static_cast<std::size_t>(meta.slot_reg[i]) * nlanes_ + k];
      }
      plan_.body(cs.x, cs.vals);
      for (std::size_t i = 0; i < nslots; ++i) {
        regs_[static_cast<std::size_t>(meta.slot_reg[i]) * nlanes_ + k] =
            *cs.slots[i];
      }
    }
    // tick_statement: the basic statement advances the clock by one.
    ++p.time;
    ++p.statements;
    cs.x += plan_.increment;
    ++p.pc;
  }
  VM_DISPATCH();

  VM_CASE(LoopEnd) {
    if (++p.loop_iter < insn->count) {
      p.pc -= static_cast<std::uint32_t>(insn->b);
    } else {
      p.loop_iter = 0;
      ++p.pc;
    }
  }
  VM_DISPATCH();

  VM_CASE(Halt) {
    p.finished = true;
    return;
  }

#ifndef SYSTOLIZE_VM_THREADED
  }
#endif
}

#undef VM_DISPATCH
#undef VM_CASE

void Vm::raise_vm_stall(const std::string& reason, ErrorKind kind) const {
  // Rebuild the forensic wait-for state from the park slots: every
  // parked op becomes a BlockedOpState, and the first blocking cycle is
  // extracted by walking each blocked process to its channel counterpart
  // (the plan declares both endpoints of every channel).
  DeadlockReport report;
  report.reason = reason;
  struct Edge {
    std::int32_t next = -1;
    std::string channel;
  };
  std::map<std::uint32_t, Edge> waits;
  for (std::size_t c = 0; c < chans_.size(); ++c) {
    const VmChan& ch = chans_[c];
    const NetworkPlan::ChannelSpec& spec = plan_.channels[c];
    if (ch.send_valid) {
      const VmProc& p = procs_[ch.send.proc];
      report.blocked.push_back(BlockedOpState{plan_.procs[ch.send.proc].name,
                                              spec.name, "send", p.time,
                                              p.statements});
      waits.emplace(ch.send.proc, Edge{spec.receiver, spec.name});
    }
    if (ch.recv_valid) {
      const VmProc& p = procs_[ch.recv.proc];
      report.blocked.push_back(BlockedOpState{plan_.procs[ch.recv.proc].name,
                                              spec.name, "recv", p.time,
                                              p.statements});
      waits.emplace(ch.recv.proc, Edge{spec.sender, spec.name});
    }
  }
  // Find one cycle in the wait-for graph (each node has out-degree <= 1
  // here, so a bounded walk from any node finds it).
  for (const auto& [start, edge] : waits) {
    (void)edge;
    std::vector<std::uint32_t> path;
    std::map<std::uint32_t, std::size_t> seen;
    std::uint32_t cur = start;
    for (;;) {
      auto it = waits.find(cur);
      if (it == waits.end() || it->second.next < 0) break;
      auto [pos, inserted] = seen.emplace(cur, path.size());
      if (!inserted) {
        for (std::size_t i = pos->second; i < path.size(); ++i) {
          report.cycle.push_back(plan_.procs[path[i]].name);
          report.cycle_channels.push_back(waits.at(path[i]).channel);
        }
        break;
      }
      path.push_back(cur);
      cur = static_cast<std::uint32_t>(it->second.next);
    }
    if (!report.cycle.empty()) break;
  }
  raise(kind, report.to_string(), report.to_json());
}

}  // namespace

VmResult run_vm(const BytecodeProgram& prog, const NetworkPlan& plan,
                const Value* in, Value* out, std::size_t lane_stride,
                std::size_t lane_begin, std::size_t lane_end,
                const VmRunOptions& opt) {
  Vm vm(prog, plan, in, out, lane_stride, lane_begin, lane_end);
  return vm.run(opt);
}

VmResult run_vm_batched(const BytecodeProgram& prog, const NetworkPlan& plan,
                        const Value* in, Value* out, std::size_t lanes,
                        unsigned threads, WorkerPool* pool,
                        const VmRunOptions& opt) {
  const auto workers = static_cast<unsigned>(
      std::min<std::size_t>(threads == 0 ? 1 : threads, lanes));
  if (workers <= 1) return run_vm(prog, plan, in, out, lanes, 0, lanes, opt);
  // Contiguous lane chunks; every chunk runs the full schedule over its
  // own lanes with private scalar state, so chunks never synchronize.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  chunks.reserve(workers);
  const std::size_t base = lanes / workers;
  const std::size_t rem = lanes % workers;
  std::size_t lo = 0;
  for (unsigned w = 0; w < workers; ++w) {
    const std::size_t len = base + (w < rem ? 1 : 0);
    chunks.emplace_back(lo, lo + len);
    lo += len;
  }
  std::vector<std::exception_ptr> errors(workers);
  VmResult first;
  std::atomic<unsigned> next{0};
  // Chunks are claimed off an atomic counter, not assigned by worker
  // index: WorkerPool participants that are never started simply leave
  // their share to whoever is running (the caller at minimum).
  const std::function<void(unsigned)> job = [&](unsigned) {
    for (unsigned c = next.fetch_add(1, std::memory_order_relaxed);
         c < workers; c = next.fetch_add(1, std::memory_order_relaxed)) {
      try {
        VmResult r = run_vm(prog, plan, in, out, lanes, chunks[c].first,
                            chunks[c].second, opt);
        if (c == 0) first = std::move(r);
      } catch (...) {
        errors[c] = std::current_exception();
      }
    }
  };
  if (pool != nullptr) {
    pool->run(workers, job);
  } else {
    std::vector<std::thread> extra;
    extra.reserve(workers - 1);
    for (unsigned w = 1; w < workers; ++w) extra.emplace_back(job, w);
    job(0);
    for (std::thread& t : extra) t.join();
  }
  for (std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return first;
}

}  // namespace systolize
