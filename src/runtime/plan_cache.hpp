// Network interning: the one-time lowering of a compiled (symbolic)
// program at a concrete problem size into a dense, integer-indexed
// NetworkPlan — the execution engine's intermediate representation.
//
// Instantiation used to re-derive the whole process network on every
// execute(): re-evaluating the symbolic repeaters, regrouping the
// process-space box into pipes, rebuilding string names and re-walking
// `std::map<IntVec>` tables. All of that is loop-size-dependent but
// run-independent, so it now happens once per (program, sizes, shape)
// and is recorded as flat vectors over dense IDs:
//   * process index — plan spawn order (== the legacy spawn order, so the
//     scheduler's FIFO behaviour and fault-roll order are unchanged),
//   * channel index — plan creation order, with the owning stream as an
//     integer (no more parsing "<stream>[pipe].link" display names),
//   * flat stream-element offsets — each pipe's element identities are a
//     contiguous [elem_begin, elem_end) slice of one `elems` vector, and
//     the run-time values travel in parallel flat Value arrays.
// A PlanCache memoizes plans per (program, sizes, shape) so that repeated
// executions of the same design — the serve-heavy-traffic scenario in
// bench_endtoend — skip instantiation entirely.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/host.hpp"
#include "runtime/network.hpp"
#include "runtime/trace.hpp"
#include "scheme/types.hpp"

namespace systolize {

class Channel;
class Scheduler;
struct Clock;
struct Process;

/// The structural knobs a plan depends on (everything in
/// InstantiateOptions that changes the network's shape, as opposed to
/// per-run attachments like faults, trace sinks or thread counts).
struct PlanShape {
  Int channel_capacity = 0;
  bool merge_internal_buffers = false;
  IntVec partition_grid;

  friend bool operator==(const PlanShape&, const PlanShape&) = default;
};

/// The interned process network: everything execute() needs to stand up
/// and run the network, with no symbolic evaluation and no string keys.
/// Self-contained — it keeps no references into the CompiledProgram or
/// LoopNest it was built from.
struct NetworkPlan {
  enum class ProcKind : std::uint8_t { Input, Output, Pass, Comp };

  struct ChannelSpec {
    std::string name;         ///< display name (diagnostics only)
    std::uint32_t stream = 0; ///< index into `streams`
    Int capacity = 0;
    std::int32_t sender = -1;   ///< producing process id (-1 = none)
    std::int32_t receiver = -1; ///< consuming process id (-1 = none)
  };

  /// One stream's role inside a computation process, channels as ids.
  struct RoleSpec {
    std::uint32_t stream = 0;
    bool stationary = false;
    Int soak = 0;   ///< pre-repeater passes (recovery passes if stationary)
    Int drain = 0;  ///< post-repeater passes (loading passes if stationary)
    std::int32_t chan_in = -1;
    std::int32_t chan_out = -1;
  };

  struct ProcSpec {
    std::string name;
    ProcKind kind = ProcKind::Pass;
    std::int32_t clock = -1;    ///< shared-clock id, -1 = own clock
    std::uint32_t stream = 0;   ///< Input/Output/Pass: the stream carried
    std::int32_t chan_in = -1;  ///< Output/Pass: channel consumed
    std::int32_t chan_out = -1; ///< Input/Pass: channel produced
    Int count = 0;              ///< elements through (Pass/Input/Output) or
                                ///< repeater iterations (Comp)
    /// Input/Output: the pipe's element identities as a slice of `elems`
    /// (an input and its pipe's output share the slice — the same
    /// elements enter and leave the pipeline).
    std::size_t elem_begin = 0, elem_end = 0;
    /// Comp: this process's stream roles as a slice of `roles`.
    std::size_t role_begin = 0, role_end = 0;
    IntVec first_x;  ///< Comp: first statement of the chord
    IntVec coords;   ///< Comp: the PS point (trace identity)
    IntVec place;    ///< PS point the process sits at (shard locality key)
  };

  std::vector<std::string> streams;   ///< stream names, by stream id
  std::vector<ChannelSpec> channels;  ///< in legacy creation order
  std::vector<ProcSpec> procs;        ///< in legacy spawn order
  std::vector<RoleSpec> roles;
  std::vector<IntVec> elems;          ///< flat pipe-element identities
  IntVec increment;                   ///< repeater chord increment
  IndexedBody body;                   ///< the loop-nest basic statement
  std::size_t clock_count = 0;        ///< shared clocks (partitioning)
  std::size_t comp_count = 0;
  std::size_t io_count = 0;
  std::size_t buffer_count = 0;
  std::size_t max_par_ops = 0;    ///< widest par set of any process
  std::size_t total_par_bound = 0;///< sum of per-process par widths — a
                                  ///< bound on simultaneously parked ops
  IntVec ps_min, ps_max;          ///< PS box (shard partitioning)
  NetworkGraph graph;             ///< topology, built once
};

/// Lower `program` at `sizes` into a NetworkPlan. Performs the same
/// validation as the legacy instantiation (conservation law, partition
/// grid arity) with identical error messages.
[[nodiscard]] std::unique_ptr<NetworkPlan> build_plan(
    const CompiledProgram& program, const LoopNest& nest, const Env& sizes,
    const PlanShape& shape);

/// Thread-safe memo of NetworkPlans keyed by (program identity, sizes,
/// shape). Program identity is (address, name, depth): callers must not
/// feed one cache two different programs sharing all three. Plans are
/// self-contained, so entries stay valid even after the source program is
/// destroyed.
class PlanCache {
 public:
  const NetworkPlan& lookup_or_build(const CompiledProgram& program,
                                     const LoopNest& nest, const Env& sizes,
                                     const PlanShape& shape);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const;
  [[nodiscard]] std::size_t misses() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<NetworkPlan>> plans_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

/// Per-run bindings for the plan's process bodies: where input values
/// come from and where extracted ones go. Exactly one of `out_values`
/// (fast/sharded path: flat buffer, committed after the run) and `store`
/// (instrumented path: write-through, preserving partial results on
/// faulted runs) is used by output processes.
struct PlanBindings {
  const NetworkPlan* plan = nullptr;
  const Value* in_values = nullptr;  ///< aligned with plan->elems
  Value* out_values = nullptr;       ///< aligned with plan->elems
  IndexedStore* store = nullptr;
  Trace* trace = nullptr;
};

/// Spawn plan process `pi` into `sched`. `chans[i]` must resolve plan
/// channel id i (channels may live in other schedulers on sharded runs);
/// `clocks` backs the plan's shared-clock ids (may be null when the plan
/// is unpartitioned). The plan, channel table and value buffers must
/// outlive the run.
Process& spawn_plan_proc(Scheduler& sched, std::uint32_t pi,
                         Channel* const* chans, Clock* clocks,
                         const PlanBindings& bindings);

}  // namespace systolize
