// Network interning: the one-time lowering of a compiled (symbolic)
// program at a concrete problem size into a dense, integer-indexed
// NetworkPlan — the execution engine's intermediate representation.
//
// Instantiation used to re-derive the whole process network on every
// execute(): re-evaluating the symbolic repeaters, regrouping the
// process-space box into pipes, rebuilding string names and re-walking
// `std::map<IntVec>` tables. All of that is loop-size-dependent but
// run-independent, so it now happens once per (program, sizes, shape)
// and is recorded as flat vectors over dense IDs:
//   * process index — plan spawn order (== the legacy spawn order, so the
//     scheduler's FIFO behaviour and fault-roll order are unchanged),
//   * channel index — plan creation order, with the owning stream as an
//     integer (no more parsing "<stream>[pipe].link" display names),
//   * flat stream-element offsets — each pipe's element identities are a
//     contiguous [elem_begin, elem_end) slice of one `elems` vector, and
//     the run-time values travel in parallel flat Value arrays.
// A PlanCache memoizes at two levels (see runtime/plan_template.hpp): the
// symbolic derivation is compiled once per (program, shape) into a
// PlanTemplate, and concrete plans are expanded from it per size vector —
// so the serve-heavy-traffic scenario where every request brings its own
// problem size pays one cheap integer expansion, not a re-derivation.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/host.hpp"
#include "runtime/network.hpp"
#include "runtime/trace.hpp"
#include "scheme/types.hpp"

namespace systolize {

class Channel;
class Scheduler;
struct Clock;
struct Process;

/// The structural knobs a plan depends on (everything in
/// InstantiateOptions that changes the network's shape, as opposed to
/// per-run attachments like faults, trace sinks or thread counts).
struct PlanShape {
  Int channel_capacity = 0;
  bool merge_internal_buffers = false;
  IntVec partition_grid;

  friend bool operator==(const PlanShape&, const PlanShape&) = default;
};

/// The interned process network: everything execute() needs to stand up
/// and run the network, with no symbolic evaluation and no string keys.
/// Self-contained — it keeps no references into the CompiledProgram or
/// LoopNest it was built from.
struct NetworkPlan {
  enum class ProcKind : std::uint8_t { Input, Output, Pass, Comp };

  struct ChannelSpec {
    std::string name;         ///< display name (diagnostics only)
    std::uint32_t stream = 0; ///< index into `streams`
    Int capacity = 0;
    std::int32_t sender = -1;   ///< producing process id (-1 = none)
    std::int32_t receiver = -1; ///< consuming process id (-1 = none)
  };

  /// One stream's role inside a computation process, channels as ids.
  struct RoleSpec {
    std::uint32_t stream = 0;
    bool stationary = false;
    Int soak = 0;   ///< pre-repeater passes (recovery passes if stationary)
    Int drain = 0;  ///< post-repeater passes (loading passes if stationary)
    std::int32_t chan_in = -1;
    std::int32_t chan_out = -1;
  };

  struct ProcSpec {
    std::string name;
    ProcKind kind = ProcKind::Pass;
    std::int32_t clock = -1;    ///< shared-clock id, -1 = own clock
    std::uint32_t stream = 0;   ///< Input/Output/Pass: the stream carried
    std::int32_t chan_in = -1;  ///< Output/Pass: channel consumed
    std::int32_t chan_out = -1; ///< Input/Pass: channel produced
    Int count = 0;              ///< elements through (Pass/Input/Output) or
                                ///< repeater iterations (Comp)
    /// Input/Output: the pipe's element identities as a slice of `elems`
    /// (an input and its pipe's output share the slice — the same
    /// elements enter and leave the pipeline).
    std::size_t elem_begin = 0, elem_end = 0;
    /// Comp: this process's stream roles as a slice of `roles`.
    std::size_t role_begin = 0, role_end = 0;
    IntVec first_x;  ///< Comp: first statement of the chord
    IntVec coords;   ///< Comp: the PS point (trace identity)
    IntVec place;    ///< PS point the process sits at (shard locality key)
  };

  std::vector<std::string> streams;   ///< stream names, by stream id
  std::vector<ChannelSpec> channels;  ///< in legacy creation order
  std::vector<ProcSpec> procs;        ///< in legacy spawn order
  std::vector<RoleSpec> roles;
  std::vector<IntVec> elems;          ///< flat pipe-element identities
  IntVec increment;                   ///< repeater chord increment
  IndexedBody body;                   ///< the loop-nest basic statement
  std::size_t clock_count = 0;        ///< shared clocks (partitioning)
  std::size_t comp_count = 0;
  std::size_t io_count = 0;
  std::size_t buffer_count = 0;
  std::size_t max_par_ops = 0;    ///< widest par set of any process
  std::size_t total_par_bound = 0;///< sum of per-process par widths — a
                                  ///< bound on simultaneously parked ops
  IntVec ps_min, ps_max;          ///< PS box (shard partitioning)
  NetworkGraph graph;             ///< topology, built once

  /// Approximate deep heap footprint (vectors, strings, the graph) —
  /// the byte currency of PlanCache's LRU accounting.
  [[nodiscard]] std::size_t memory_bytes() const;
};

/// Lower `program` at `sizes` into a NetworkPlan in one symbolic pass.
/// Performs the same validation as the legacy instantiation (conservation
/// law, partition grid arity) with identical error messages. This is the
/// ground-truth reference for the template pipeline: expand_template()
/// must reproduce its output bit for bit, and the cross-size differential
/// suite (tests/runtime/test_plan_template.cpp) asserts exactly that.
[[nodiscard]] std::unique_ptr<NetworkPlan> build_plan(
    const CompiledProgram& program, const LoopNest& nest, const Env& sizes,
    const PlanShape& shape);

struct PlanTemplate;    // runtime/plan_template.hpp
struct BytecodeProgram; // runtime/bytecode.hpp

/// Thread-safe two-level memo built on the compile-once/specialize-cheaply
/// split of runtime/plan_template.hpp:
///
///   * template level — one PlanTemplate per (program generation, shape).
///     Program identity is CompiledProgram::generation, minted per
///     derivation and preserved across copies, so two different programs
///     that reuse one address and name can never alias. Each template is
///     compiled exactly once per key (concurrent callers block on a
///     std::once_flag rather than duplicating the symbolic work);
///     templates are small and never evicted.
///   * plan level — one expanded NetworkPlan per (template, sizes), under
///     LRU eviction against a configurable byte budget measured with
///     NetworkPlan::memory_bytes(). A never-seen size costs one integer
///     expansion instead of a full symbolic derivation.
///
/// Plans and templates are self-contained and handed out as shared_ptr,
/// so entries stay valid across eviction and after the source program is
/// destroyed.
class PlanCache {
 public:
  /// Default byte budget: generous enough that ordinary test/bench
  /// workloads see zero evictions.
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{256} * 1024 * 1024;

  explicit PlanCache(std::size_t byte_budget = kDefaultByteBudget);

  /// Per-call outcome, for RunMetrics reporting.
  struct LookupStats {
    bool plan_hit = false;      ///< plan came straight from the cache
    bool template_hit = false;  ///< template was already compiled
    std::uint64_t expand_ns = 0;  ///< time spent in expand_template (0 on hit)
  };

  [[nodiscard]] std::shared_ptr<const NetworkPlan> lookup_or_build(
      const CompiledProgram& program, const LoopNest& nest, const Env& sizes,
      const PlanShape& shape, LookupStats* stats = nullptr);

  /// The compiled template for (program, shape), compiling it on first use
  /// (deduplicated across threads).
  [[nodiscard]] std::shared_ptr<const PlanTemplate> lookup_template(
      const CompiledProgram& program, const LoopNest& nest,
      const PlanShape& shape, LookupStats* stats = nullptr);

  /// Per-call outcome of the bytecode level, for RunMetrics reporting.
  struct BytecodeStats {
    bool hit = false;           ///< lowered program came from the cache
    std::uint64_t lower_ns = 0; ///< time spent in lower_plan (0 on hit)
  };

  /// Third cache level: the lowered bytecode program of an expanded plan
  /// (runtime/bytecode.hpp), keyed by plan identity. The entry pins the
  /// plan's shared_ptr, so the address key can never alias a recycled
  /// allocation while cached. Same LRU byte budget as the plan level
  /// (accounted separately — lowered programs are tiny next to plans).
  [[nodiscard]] std::shared_ptr<const BytecodeProgram> lookup_or_lower(
      std::shared_ptr<const NetworkPlan> plan,
      BytecodeStats* stats = nullptr);

  [[nodiscard]] std::size_t bytecode_size() const;    ///< cached programs
  [[nodiscard]] std::size_t bytecode_hits() const;
  [[nodiscard]] std::size_t bytecode_misses() const;  ///< lowerings
  [[nodiscard]] std::size_t bytecode_evictions() const;
  [[nodiscard]] std::size_t bytecode_bytes() const;
  /// Cumulative nanoseconds spent lowering plans to bytecode.
  [[nodiscard]] std::uint64_t lower_ns() const;

  [[nodiscard]] std::size_t size() const;    ///< cached plans
  [[nodiscard]] std::size_t hits() const;    ///< plan-level hits
  [[nodiscard]] std::size_t misses() const;  ///< plan-level expansions
  [[nodiscard]] std::size_t template_hits() const;
  [[nodiscard]] std::size_t template_compiles() const;
  [[nodiscard]] std::size_t evictions() const;
  [[nodiscard]] std::size_t bytes() const;  ///< current plan bytes held
  [[nodiscard]] std::size_t byte_budget() const;
  /// Resize the plan-level byte budget, evicting LRU entries down to the
  /// new budget immediately. Shrinking is the service's memory-pressure
  /// degradation lever: handed-out shared_ptrs stay valid (eviction only
  /// drops the cache's reference) and templates are never evicted, so a
  /// shrunken cache degrades to per-request integer expansion, not to
  /// re-derivation. Thread-safe against concurrent lookups.
  void set_byte_budget(std::size_t byte_budget);
  /// Cumulative nanoseconds spent expanding templates into plans.
  [[nodiscard]] std::uint64_t expand_ns() const;

 private:
  struct TemplateSlot;
  struct PlanEntry {
    std::string key;
    std::shared_ptr<const NetworkPlan> plan;
    std::size_t bytes = 0;
  };

  struct BytecodeEntry {
    const NetworkPlan* key = nullptr;
    std::shared_ptr<const NetworkPlan> plan;  ///< pins the key's identity
    std::shared_ptr<const BytecodeProgram> program;
    std::size_t bytes = 0;
  };

  void insert_plan(std::string key, std::shared_ptr<const NetworkPlan> plan,
                   LookupStats* stats);
  /// Evict LRU entries until bytes_ <= budget_ (keeps >= 1 entry).
  /// Caller holds mu_.
  void evict_to_budget_locked();
  /// Same, for the bytecode level's own byte accounting.
  void evict_bytecode_locked();

  std::size_t budget_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<TemplateSlot>> templates_;
  /// LRU list, most-recently-used first; plans_ maps key -> list position.
  std::list<PlanEntry> lru_;
  std::map<std::string, std::list<PlanEntry>::iterator> plans_;
  std::size_t bytes_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t template_hits_ = 0;
  std::size_t template_compiles_ = 0;
  std::size_t evictions_ = 0;
  std::uint64_t expand_ns_ = 0;
  /// Bytecode level: LRU list (most-recent first) + address index.
  std::list<BytecodeEntry> bc_lru_;
  std::map<const NetworkPlan*, std::list<BytecodeEntry>::iterator> bc_index_;
  std::size_t bc_bytes_ = 0;
  std::size_t bc_hits_ = 0;
  std::size_t bc_misses_ = 0;
  std::size_t bc_evictions_ = 0;
  std::uint64_t lower_ns_ = 0;
};

/// Per-run bindings for the plan's process bodies: where input values
/// come from and where extracted ones go. Exactly one of `out_values`
/// (fast/sharded path: flat buffer, committed after the run) and `store`
/// (instrumented path: write-through, preserving partial results on
/// faulted runs) is used by output processes.
struct PlanBindings {
  const NetworkPlan* plan = nullptr;
  const Value* in_values = nullptr;  ///< aligned with plan->elems
  Value* out_values = nullptr;       ///< aligned with plan->elems
  IndexedStore* store = nullptr;
  Trace* trace = nullptr;
};

/// Spawn plan process `pi` into `sched`. `chans[i]` must resolve plan
/// channel id i (channels may live in other schedulers on sharded runs);
/// `clocks` backs the plan's shared-clock ids (may be null when the plan
/// is unpartitioned). The plan, channel table and value buffers must
/// outlive the run.
Process& spawn_plan_proc(Scheduler& sched, std::uint32_t pi,
                         Channel* const* chans, Clock* clocks,
                         const PlanBindings& bindings);

}  // namespace systolize
