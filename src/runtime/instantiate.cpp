#include "runtime/instantiate.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "runtime/scheduler.hpp"

namespace systolize {
namespace {

bool in_box(const IntVec& y, const IntVec& lo, const IntVec& hi) {
  for (std::size_t i = 0; i < y.dim(); ++i) {
    if (y[i] < lo[i] || y[i] > hi[i]) return false;
  }
  return true;
}

/// Most-upstream box point of the line through y along `dir`.
IntVec anchor_of(const IntVec& y, const IntVec& dir, const IntVec& lo,
                 const IntVec& hi) {
  IntVec a = y;
  for (;;) {
    IntVec prev = a - dir;
    if (!in_box(prev, lo, hi)) return a;
    a = prev;
  }
}

// ---- process bodies -------------------------------------------------
// Coroutine bodies take every datum BY VALUE so it is copied into the
// coroutine frame (lambda captures would dangle once spawn() returns).

Task input_body(Ctx ctx, Channel* chan, std::vector<Value> values) {
  for (Value v : values) {
    co_await ctx.send(*chan, v);
  }
}

Task output_body(Ctx ctx, Channel* chan, std::vector<IntVec> elems,
                 std::string var, IndexedStore* store) {
  for (const IntVec& w : elems) {
    Value v = 0;
    co_await ctx.recv(*chan, v);
    store->set(var, w, v);
  }
}

Task pass_body(Ctx ctx, Channel* in, Channel* out, Int count) {
  for (Int i = 0; i < count; ++i) {
    Value v = 0;
    co_await ctx.recv(*in, v);
    co_await ctx.send(*out, v);
  }
}

/// One stream's role inside a computation process.
struct StreamRole {
  std::string name;
  bool stationary = false;
  Int soak = 0;   ///< pre-repeater passes (recovery passes when stationary)
  Int drain = 0;  ///< post-repeater passes (loading passes when stationary)
  Channel* in = nullptr;
  Channel* out = nullptr;
};

struct CompSpec {
  Int count = 0;
  std::vector<StreamRole> roles;  // in stream declaration order
  IndexedBody body;
  IntVec first_x;          ///< first statement of this process's chord
  IntVec increment;        ///< chord increment, to reconstruct each x
  IntVec coords;           ///< the process's point in PS (for tracing)
  Trace* trace = nullptr;  ///< optional statement trace sink
};

Task computation_body(Ctx ctx, CompSpec spec) {
  std::map<std::string, Value> vals;
  // Prologue, in the phase order of the paper's final programs (D.1.7):
  // first load every stationary stream, then soak every moving one.
  // Stationary channels are touched only in load/recover and moving ones
  // only in soak/repeater/drain, so this phase order is globally
  // consistent across processes — mixing them deadlocks (a process
  // recovering a stationary stream would block a neighbour still waiting
  // on a moving drain).
  for (StreamRole& role : spec.roles) {
    if (!role.stationary) continue;
    Value own = 0;
    co_await ctx.recv(*role.in, own);
    vals[role.name] = own;
    for (Int i = 0; i < role.drain; ++i) {  // loading passes = drain_s
      Value v = 0;
      co_await ctx.recv(*role.in, v);
      co_await ctx.send(*role.out, v);
    }
  }
  for (StreamRole& role : spec.roles) {
    if (role.stationary) continue;
    for (Int i = 0; i < role.soak; ++i) {
      Value v = 0;
      co_await ctx.recv(*role.in, v);
      co_await ctx.send(*role.out, v);
    }
  }
  // The repeater: receive every moving stream in par, compute, send in par.
  for (Int iter = 0; iter < spec.count; ++iter) {
    std::vector<CommOp> recvs;
    for (StreamRole& role : spec.roles) {
      if (!role.stationary) {
        recvs.push_back(ctx.recv_op(*role.in, vals[role.name]));
      }
    }
    if (!recvs.empty()) co_await ctx.par(std::move(recvs));
    spec.body(spec.first_x + spec.increment * iter, vals);
    ctx.tick_statement();
    if (spec.trace != nullptr) {
      spec.trace->statements.push_back(
          StatementEvent{spec.coords, iter, ctx.process().time()});
    }
    std::vector<CommOp> sends;
    for (StreamRole& role : spec.roles) {
      if (!role.stationary) {
        sends.push_back(ctx.send_op(*role.out, vals[role.name]));
      }
    }
    if (!sends.empty()) co_await ctx.par(std::move(sends));
  }
  // Epilogue, mirroring the prologue's phase order (D.1.7: "pass c,
  // n-col" before "recover a, col"): drain every moving stream first,
  // recover every stationary one last.
  for (StreamRole& role : spec.roles) {
    if (role.stationary) continue;
    for (Int i = 0; i < role.drain; ++i) {
      Value v = 0;
      co_await ctx.recv(*role.in, v);
      co_await ctx.send(*role.out, v);
    }
  }
  for (StreamRole& role : spec.roles) {
    if (!role.stationary) continue;
    for (Int i = 0; i < role.soak; ++i) {  // recovery passes = soak_s
      Value v = 0;
      co_await ctx.recv(*role.in, v);
      co_await ctx.send(*role.out, v);
    }
    co_await ctx.send(*role.out, vals[role.name]);
  }
}

std::string point_name(const std::string& prefix, const IntVec& y) {
  return prefix + y.to_string();
}

}  // namespace

RunMetrics execute(const CompiledProgram& program, const LoopNest& nest,
                   const Env& sizes, IndexedStore& store,
                   const InstantiateOptions& options) {
  // Physical-processor clocks must outlive the scheduler (processes hold
  // raw pointers into them until destruction).
  std::map<IntVec, std::unique_ptr<Clock>, IntVecLess> clocks;
  Scheduler sched;
  RunMetrics metrics;

  // Robustness layer: attach the fault injector (so spawn-time rolls see
  // every process) and the watchdog bounds before building the network.
  std::optional<FaultInjector> injector;
  if (options.faults != nullptr && !options.faults->empty()) {
    injector.emplace(*options.faults);
    sched.set_fault_injector(&*injector);
  }
  sched.set_watchdog(options.watchdog);

  const IntVec ps_min = program.ps.min.evaluate(sizes);
  const IntVec ps_max = program.ps.max.evaluate(sizes);

  // Partitioning: map a process-space point to its block's shared clock
  // (nullptr when unpartitioned: every process gets its own clock).
  auto clock_for = [&](const IntVec& y) -> Clock* {
    if (options.partition_grid.dim() == 0) return nullptr;
    if (options.partition_grid.dim() != y.dim()) {
      raise(ErrorKind::Validation,
            "partition grid must have one entry per process-space "
            "dimension");
    }
    IntVec block(y.dim());
    for (std::size_t i = 0; i < y.dim(); ++i) {
      Int extent = ps_max[i] - ps_min[i] + 1;
      Int g = std::max<Int>(
          1, std::min<Int>(options.partition_grid[i], extent));
      block[i] = (y[i] - ps_min[i]) * g / extent;
    }
    auto& slot = clocks[block];
    if (!slot) slot = std::make_unique<Clock>();
    return slot.get();
  };

  auto env_at = [&](const IntVec& y) {
    Env env = sizes;
    for (std::size_t i = 0; i < program.coords.size(); ++i) {
      env[program.coords[i].name()] = Rational(y[i]);
    }
    return env;
  };

  // Enumerate the PS box.
  std::vector<IntVec> box;
  {
    IntVec y = ps_min;
    for (;;) {
      box.push_back(y);
      std::size_t i = y.dim();
      bool done = true;
      while (i > 0) {
        --i;
        if (++y[i] <= ps_max[i]) {
          done = false;
          break;
        }
        y[i] = ps_min[i];
        if (i == 0) break;
      }
      if (done) break;
    }
  }

  std::map<IntVec, bool, IntVecLess> in_cs;
  for (const IntVec& y : box) {
    in_cs[y] = program.repeater.first.covers(env_at(y));
  }

  // Ports of each computation process, per stream, filled below.
  struct Port {
    Channel* in = nullptr;
    Channel* out = nullptr;
    Int pipe_count = 0;
  };
  std::map<IntVec, std::map<std::string, Port>, IntVecLess> ports;

  for (const StreamPlan& plan : program.streams) {

    const IntVec& dir = plan.motion.direction;
    const Int q = plan.motion.denominator;
    const Int inner_buffers =
        options.merge_internal_buffers ? 0 : q - 1;
    const Int hop_capacity = options.channel_capacity +
                             (options.merge_internal_buffers ? q - 1 : 0);

    // Group box points into pipes by their upstream anchor.
    std::map<IntVec, std::vector<IntVec>, IntVecLess> pipes;
    for (const IntVec& y : box) {
      pipes[anchor_of(y, dir, ps_min, ps_max)].push_back(y);
    }
    std::size_t pipe_idx = 0;
    for (auto& [a, points] : pipes) {
      // Order the pipe's points from the anchor downstream.
      std::sort(points.begin(), points.end(),
                [&dir](const IntVec& p1, const IntVec& p2) {
                  return p1.dot(dir) < p2.dot(dir);
                });
      Env env = env_at(a);
      const AffineExpr* count_expr = plan.io.count_s.select(env);
      Int count = count_expr == nullptr
                      ? 0
                      : count_expr->evaluate(env).to_integer();

      // Element identities in pipeline order.
      std::vector<IntVec> elems;
      if (count > 0) {
        const AffinePoint* first_expr = plan.io.first_s.select(env);
        if (first_expr == nullptr) {
          raise(ErrorKind::Inconsistent,
                "stream '" + plan.name + "': count_s > 0 but first_s null");
        }
        IntVec w = first_expr->evaluate(env);
        for (Int t = 0; t < count; ++t) {
          elems.push_back(w);
          w += plan.io.increment_s;
        }
      }

      // Channel chain: IN -> [bufs] -> y0 -> [bufs] -> y1 ... -> OUT.
      const std::string cname =
          plan.name + "[" + std::to_string(pipe_idx) + "]";
      Channel* prev = &sched.make_channel(cname + ".0",
                                          options.channel_capacity);
      Channel* head = prev;
      std::size_t link = 1;
      NetworkGraph* net = options.network;
      const std::string in_name = point_name("in:" + plan.name + ":", a);
      if (net != nullptr) {
        net->add_node(in_name, NetworkGraph::NodeKind::Input);
      }
      std::string last_node = in_name;
      auto link_node = [&](const std::string& node,
                           NetworkGraph::NodeKind kind,
                           const Channel* via) {
        if (net == nullptr) return;
        net->add_node(node, kind);
        net->add_edge(last_node, node, via->name(), plan.name);
        last_node = node;
      };
      for (const IntVec& y : points) {
        // Internal buffers in front of every process on the pipe
        // (Sect. 7.6 and the regularity remark of D.1.6).
        for (Int bi = 0; bi < inner_buffers; ++bi) {
          Channel* next = &sched.make_channel(
              cname + "." + std::to_string(link++), options.channel_capacity);
          const std::string bname = point_name("buf:" + plan.name + ":", y) +
                                    "#" + std::to_string(bi);
          Process& bp = sched.spawn(bname,
                                    [prev, next, count](Ctx ctx) {
                                      return pass_body(ctx, prev, next, count);
                                    },
                                    clock_for(y));
          prev->declare_receiver(bp);
          next->declare_sender(bp);
          link_node(bname, NetworkGraph::NodeKind::Buffer, prev);
          ++metrics.buffer_processes;
          prev = next;
        }
        Channel* next = &sched.make_channel(
            cname + "." + std::to_string(link++), hop_capacity);
        if (in_cs.at(y)) {
          ports[y][plan.name] = Port{prev, next, count};
          link_node(point_name("comp:", y),
                    NetworkGraph::NodeKind::Computation, prev);
        } else {
          // External buffer process: pass the whole pipeline (Eq. 10) —
          // zero elements when no pipe of this stream crosses the point.
          const std::string xname = point_name("xbuf:" + plan.name + ":", y);
          Process& xp = sched.spawn(xname,
                                    [prev, next, count](Ctx ctx) {
                                      return pass_body(ctx, prev, next, count);
                                    },
                                    clock_for(y));
          prev->declare_receiver(xp);
          next->declare_sender(xp);
          link_node(xname, NetworkGraph::NodeKind::Buffer, prev);
          ++metrics.buffer_processes;
        }
        prev = next;
      }

      // Input and output i/o processes for this pipe.
      std::vector<Value> values;
      values.reserve(elems.size());
      for (const IntVec& w : elems) {
        values.push_back(store.get(plan.name, w));
      }
      Process& inp = sched.spawn(in_name,
                                 [head, values](Ctx ctx) {
                                   return input_body(ctx, head, values);
                                 },
                                 clock_for(a));
      head->declare_sender(inp);
      IndexedStore* store_ptr = &store;
      std::string var = plan.name;
      const std::string out_name =
          point_name("out:" + plan.name + ":", points.back());
      link_node(out_name, NetworkGraph::NodeKind::Output, prev);
      Process& outp =
          sched.spawn(out_name,
                      [prev, elems, var, store_ptr](Ctx ctx) {
                        return output_body(ctx, prev, elems, var, store_ptr);
                      },
                      clock_for(points.back()));
      prev->declare_receiver(outp);
      metrics.io_processes += 2;
      ++pipe_idx;
    }
  }

  // Computation processes.
  for (const IntVec& y : box) {
    if (!in_cs.at(y)) continue;
    Env env = env_at(y);
    CompSpec spec;
    spec.count = program.repeater.count.select(env)->evaluate(env).to_integer();
    spec.body = nest.body();
    spec.first_x = program.repeater.first.select(env)->evaluate(env);
    spec.increment = program.repeater.increment;
    spec.coords = y;
    spec.trace = options.trace;
    for (const StreamPlan& plan : program.streams) {
      StreamRole role;
      role.name = plan.name;
      role.stationary = plan.motion.stationary;
      const AffineExpr* soak = plan.soak.select(env);
      const AffineExpr* drain = plan.drain.select(env);
      if (soak == nullptr || drain == nullptr) {
        raise(ErrorKind::Inconsistent,
              "computation process " + y.to_string() +
                  " lacks soak/drain for stream '" + plan.name + "'");
      }
      role.soak = soak->evaluate(env).to_integer();
      role.drain = drain->evaluate(env).to_integer();
      const Port& port = ports.at(y).at(plan.name);
      role.in = port.in;
      role.out = port.out;
      // Conservation law: everything that enters a process leaves it.
      Int through = role.stationary ? role.soak + role.drain + 1
                                    : role.soak + spec.count + role.drain;
      if (through != port.pipe_count) {
        raise(ErrorKind::Inconsistent,
              "stream '" + plan.name + "' at " + y.to_string() +
                  ": soak+uses+drain = " + std::to_string(through) +
                  " but the pipeline carries " +
                  std::to_string(port.pipe_count) + " elements");
      }
      spec.roles.push_back(std::move(role));
    }
    Process& cp = sched.spawn(
        point_name("comp:", y),
        [spec](Ctx ctx) { return computation_body(ctx, spec); },
        clock_for(y));
    for (const StreamRole& role : spec.roles) {
      role.in->declare_receiver(cp);
      role.out->declare_sender(cp);
    }
    ++metrics.computation_processes;
  }

  sched.run();

  metrics.scheduler_rounds = sched.round();
  metrics.faults_injected = injector ? injector->injected() : 0;
  metrics.makespan = sched.makespan();
  metrics.physical_processors = options.partition_grid.dim() == 0
                                    ? sched.processes().size()
                                    : clocks.size();
  metrics.total_transfers = sched.total_transfers();
  metrics.channel_count = sched.channel_count();
  metrics.process_count = sched.processes().size();
  for (const auto& p : sched.processes()) {
    metrics.statements += p->statements;
  }
  for (const StreamPlan& plan : program.streams) {
    metrics.transfers_per_stream[plan.name] = 0;
  }
  for (const auto& chan : sched.channels()) {
    // Channel names are "<stream>[pipe].link".
    std::string stream = chan->name().substr(0, chan->name().find('['));
    metrics.transfers_per_stream[stream] += chan->transfers();
  }
  return metrics;
}

}  // namespace systolize
