#include "runtime/instantiate.hpp"

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/verify.hpp"
#include "runtime/bytecode.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/shard.hpp"
#include "runtime/vm.hpp"
#include "support/error.hpp"

namespace systolize {

namespace {

// Names the first option incompatible with the bytecode VM, or returns
// an empty string when the options are eligible. The VM executes pure
// rendezvous networks with flat-buffer I/O; everything it cannot do is
// a per-run attachment the coroutine scheduler handles.
std::string bytecode_blocker(const InstantiateOptions& options) {
  if (options.channel_capacity > 0) {
    return "buffered channels (channel capacity > 0)";
  }
  if (options.merge_internal_buffers) return "merged internal buffers";
  if (options.partition_grid.dim() != 0) return "partitioning";
  if (options.trace != nullptr) {
    return "tracing (trace order is engine-specific)";
  }
  if (options.faults != nullptr && !options.faults->empty()) {
    return "fault injection (verdicts are per instance; run faulted "
           "instances individually through the interpreter)";
  }
  if (options.watchdog.max_blocked_rounds > 0) {
    return "per-process starvation bounds (--watchdog-blocked)";
  }
  return {};
}

// The bytecode path shared by execute(backend=Bytecode) and
// execute_batch: expand (or fetch) the plan, lower (or fetch) the
// program, run all instances as SoA lanes of one VM dispatch, and
// de-interleave the outputs back into the per-instance stores.
// Options must already have passed bytecode_blocker().
RunMetrics run_bytecode(const CompiledProgram& program, const LoopNest& nest,
                        const Env& sizes, IndexedStore* stores,
                        std::size_t batch,
                        const InstantiateOptions& options) {
  const PlanShape shape{options.channel_capacity,
                        options.merge_internal_buffers,
                        options.partition_grid};
  std::shared_ptr<const NetworkPlan> plan;
  PlanCache::LookupStats cache_stats;
  if (options.plan_cache != nullptr) {
    plan = options.plan_cache->lookup_or_build(program, nest, sizes, shape,
                                               &cache_stats);
  } else {
    plan = build_plan(program, nest, sizes, shape);
  }
  if (options.network != nullptr) *options.network = plan->graph;

  if (options.verify_plan) {
    VerifyReport rep = verify_program(program, nest);
    verify_plan_into(rep, *plan);
    if (rep.errors() != 0) {
      raise(ErrorKind::Validation,
            "static plan verification failed:\n" + rep.to_string(),
            rep.to_json());
    }
  }

  std::shared_ptr<const BytecodeProgram> prog;
  PlanCache::BytecodeStats bc_stats;
  if (options.plan_cache != nullptr) {
    prog = options.plan_cache->lookup_or_lower(plan, &bc_stats);
  } else {
    const auto t0 = std::chrono::steady_clock::now();
    prog = lower_plan(*plan);
    bc_stats.lower_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  // Gather every instance's input pipes into one instance-major buffer:
  // element e of lane l at in[e * batch + l] (the VM's lane layout, so a
  // rendezvous moves all lanes with one dense copy).
  const std::size_t elem_count = plan->elems.size();
  std::vector<Value> in(elem_count * batch, 0);
  std::vector<Value> out(elem_count * batch, 0);
  std::vector<Value> row;
  for (const NetworkPlan::ProcSpec& spec : plan->procs) {
    if (spec.kind != NetworkPlan::ProcKind::Input) continue;
    const std::size_t n = spec.elem_end - spec.elem_begin;
    row.resize(n);
    for (std::size_t lane = 0; lane < batch; ++lane) {
      stores[lane].gather(plan->streams[spec.stream],
                          plan->elems.data() + spec.elem_begin, n,
                          row.data());
      for (std::size_t k = 0; k < n; ++k) {
        in[(spec.elem_begin + k) * batch + lane] = row[k];
      }
    }
  }

  VmRunOptions vopt;
  vopt.max_rounds = options.watchdog.max_rounds;
  vopt.cancel = options.watchdog.cancel;
  vopt.cancel_reason = options.watchdog.cancel_reason;
  vopt.cancel_kind = options.watchdog.cancel_kind;
  VmResult result =
      run_vm_batched(*prog, *plan, in.data(), out.data(), batch,
                     options.threads, options.worker_pool, vopt);

  for (const NetworkPlan::ProcSpec& spec : plan->procs) {
    if (spec.kind != NetworkPlan::ProcKind::Output) continue;
    const std::size_t n = spec.elem_end - spec.elem_begin;
    row.resize(n);
    for (std::size_t lane = 0; lane < batch; ++lane) {
      for (std::size_t k = 0; k < n; ++k) {
        row[k] = out[(spec.elem_begin + k) * batch + lane];
      }
      stores[lane].scatter(plan->streams[spec.stream],
                           plan->elems.data() + spec.elem_begin, n,
                           row.data());
    }
  }

  RunMetrics metrics;
  metrics.plan_reused = cache_stats.plan_hit;
  metrics.template_reused = cache_stats.template_hit;
  metrics.plan_expand_ns = static_cast<Int>(cache_stats.expand_ns);
  if (options.plan_cache != nullptr) {
    metrics.plan_cache_bytes = options.plan_cache->bytes();
    metrics.plan_cache_evictions = options.plan_cache->evictions();
  }
  metrics.process_count = plan->procs.size();
  metrics.channel_count = plan->channels.size();
  metrics.computation_processes = plan->comp_count;
  metrics.io_processes = plan->io_count;
  metrics.buffer_processes = plan->buffer_count;
  metrics.physical_processors = plan->procs.size();  // no partitioning
  metrics.backend = "bytecode";
  metrics.batch = batch;
  metrics.bytecode_reused = bc_stats.hit;
  metrics.bytecode_lower_ns = static_cast<Int>(bc_stats.lower_ns);
  metrics.bytecode_instructions = prog->instruction_count();
  metrics.makespan = result.makespan;
  metrics.total_transfers = result.total_transfers;
  metrics.statements = result.statements;
  metrics.scheduler_rounds = result.rounds;
  for (const std::string& stream : plan->streams) {
    metrics.transfers_per_stream[stream] = 0;
  }
  for (std::size_t c = 0; c < plan->channels.size(); ++c) {
    metrics.transfers_per_stream[plan->streams[plan->channels[c].stream]] +=
        result.channel_transfers[c];
  }
  return metrics;
}

}  // namespace

// Instantiation is now plan-driven: the symbolic program is lowered once
// into an interned NetworkPlan (runtime/plan_cache — dense process and
// channel ids, flat element slices, the legacy spawn order preserved) and
// execute() only stands the network up and runs it. With a PlanCache
// attached, the symbolic derivation is compiled once per (program, shape)
// into a PlanTemplate and each new size costs only an integer expansion;
// repeated executions at a known size skip even that.
RunMetrics execute(const CompiledProgram& program, const LoopNest& nest,
                   const Env& sizes, IndexedStore& store,
                   const InstantiateOptions& options) {
  if (options.backend == Backend::Bytecode) {
    const std::string blocker = bytecode_blocker(options);
    if (!blocker.empty()) {
      raise(ErrorKind::Validation,
            "the bytecode backend cannot run with " + blocker +
                "; use --backend=interp");
    }
    return run_bytecode(program, nest, sizes, &store, 1, options);
  }
  const PlanShape shape{options.channel_capacity,
                        options.merge_internal_buffers,
                        options.partition_grid};
  std::unique_ptr<NetworkPlan> local_plan;
  std::shared_ptr<const NetworkPlan> cached_plan;
  const NetworkPlan* plan = nullptr;
  PlanCache::LookupStats cache_stats;
  if (options.plan_cache != nullptr) {
    // Keep a shared_ptr for the whole run: LRU eviction by a concurrent
    // lookup must not free the plan under us.
    cached_plan = options.plan_cache->lookup_or_build(program, nest, sizes,
                                                      shape, &cache_stats);
    plan = cached_plan.get();
  } else {
    local_plan = build_plan(program, nest, sizes, shape);
    plan = local_plan.get();
  }
  if (options.network != nullptr) *options.network = plan->graph;

  if (options.verify_plan) {
    // Static verification gate: prove the schedule, guards and channel
    // structure sound before a single process is spawned.
    VerifyReport rep = verify_program(program, nest);
    verify_plan_into(rep, *plan);
    if (rep.errors() != 0) {
      raise(ErrorKind::Validation,
            "static plan verification failed:\n" + rep.to_string(),
            rep.to_json());
    }
  }

  const bool faulted =
      options.faults != nullptr && !options.faults->empty();
  const bool instrumented = faulted || options.watchdog.max_rounds > 0 ||
                            options.watchdog.max_blocked_rounds > 0 ||
                            options.watchdog.cancel != nullptr;

  const unsigned threads = options.threads;
  if (threads > 1) {
    // The work-stealing substrate keeps results bit-identical to the
    // sequential schedule only when nothing depends on arrival order or
    // on schedule-order PRNG state; anything else must run sequentially.
    if (options.trace != nullptr) {
      raise(ErrorKind::Validation,
            "parallel execution (threads > 1) cannot be combined with "
            "tracing (trace order is schedule-dependent); run traced "
            "modes sequentially");
    }
    if (faulted) {
      for (const FaultSpec& spec : options.faults->specs()) {
        if (spec.kind == FaultKind::Delay ||
            spec.kind == FaultKind::Duplicate) {
          raise(ErrorKind::Validation,
                "parallel execution cannot inject transfer faults "
                "(delay/duplicate): their PRNG state is consumed in "
                "schedule order; stall/kill faults roll at spawn time "
                "and are allowed");
        }
      }
      const FaultProfile& prof = options.faults->profile();
      if (prof.delay_probability > 0.0 ||
          prof.duplicate_probability > 0.0) {
        raise(ErrorKind::Validation,
              "parallel execution cannot inject transfer faults "
              "(delay/duplicate): their PRNG state is consumed in "
              "schedule order; stall/kill faults roll at spawn time "
              "and are allowed");
      }
    }
    if (options.watchdog.max_blocked_rounds > 0) {
      raise(ErrorKind::Validation,
            "parallel execution cannot enforce per-process starvation "
            "bounds (--watchdog-blocked): they are defined in sequential "
            "scheduler rounds; use --watchdog-rounds or a wall-clock "
            "deadline instead");
    }
    if (options.channel_capacity > 0 || options.merge_internal_buffers) {
      raise(ErrorKind::Validation,
            "parallel execution requires pure rendezvous channels "
            "(capacity 0, unmerged internal buffers): buffered hand-off "
            "timestamps depend on arrival order");
    }
    if (options.partition_grid.dim() != 0) {
      raise(ErrorKind::Validation,
            "parallel execution cannot be combined with partitioning "
            "(partition blocks share a logical clock across workers)");
    }
  }

  // Gather every input pipe's values into one flat buffer up front. The
  // legacy path read the store pipe-by-pipe while building the network;
  // outputs are only written during/after the run, so a bulk pre-run
  // gather reads exactly the same values.
  std::vector<Value> in_values(plan->elems.size(), 0);
  for (const NetworkPlan::ProcSpec& spec : plan->procs) {
    if (spec.kind != NetworkPlan::ProcKind::Input) continue;
    store.gather(plan->streams[spec.stream],
                 plan->elems.data() + spec.elem_begin,
                 spec.elem_end - spec.elem_begin,
                 in_values.data() + spec.elem_begin);
  }

  RunMetrics metrics;
  metrics.plan_reused = cache_stats.plan_hit;
  metrics.template_reused = cache_stats.template_hit;
  metrics.plan_expand_ns = static_cast<Int>(cache_stats.expand_ns);
  if (options.plan_cache != nullptr) {
    metrics.plan_cache_bytes = options.plan_cache->bytes();
    metrics.plan_cache_evictions = options.plan_cache->evictions();
  }
  metrics.process_count = plan->procs.size();
  metrics.channel_count = plan->channels.size();
  metrics.computation_processes = plan->comp_count;
  metrics.io_processes = plan->io_count;
  metrics.buffer_processes = plan->buffer_count;
  metrics.physical_processors = options.partition_grid.dim() == 0
                                    ? plan->procs.size()
                                    : plan->clock_count;

  // Fast and sharded paths extract into a flat buffer committed after a
  // successful run; the instrumented path keeps the legacy write-through
  // output processes so a faulted run's partial results stay observable.
  std::vector<Value> out_values;
  std::vector<Int> channel_transfers;

  if (threads > 1) {
    out_values.assign(plan->elems.size(), 0);
    std::optional<FaultInjector> injector;
    ShardRunOptions sopt;
    sopt.watchdog = options.watchdog;
    sopt.pool = options.worker_pool;
    if (faulted) {
      injector.emplace(*options.faults);
      sopt.injector = &*injector;
    }
    ShardRunStats stats = run_sharded(*plan, threads, in_values.data(),
                                      out_values.data(), sopt);
    metrics.makespan = stats.makespan;
    metrics.statements = stats.statements;
    metrics.total_transfers = stats.total_transfers;
    metrics.scheduler_rounds = stats.rounds;
    metrics.shards = stats.shards;
    metrics.workers = std::move(stats.workers);
    metrics.faults_injected = injector ? injector->injected() : 0;
    channel_transfers = std::move(stats.channel_transfers);
  } else {
    Scheduler sched;
    std::optional<FaultInjector> injector;
    if (faulted) {
      injector.emplace(*options.faults);
      sched.set_fault_injector(&*injector);
    }
    sched.set_watchdog(options.watchdog);

    // Physical-processor clocks for partitioned runs; processes hold raw
    // pointers into this vector until the scheduler is destroyed.
    std::vector<Clock> clocks(plan->clock_count);
    std::vector<Channel*> chans;
    chans.reserve(plan->channels.size());
    for (const NetworkPlan::ChannelSpec& spec : plan->channels) {
      chans.push_back(&sched.make_channel(spec.name, spec.capacity));
    }
    if (!instrumented) out_values.assign(plan->elems.size(), 0);
    PlanBindings bindings;
    bindings.plan = plan;
    bindings.in_values = in_values.data();
    bindings.out_values = instrumented ? nullptr : out_values.data();
    bindings.store = &store;
    bindings.trace = options.trace;
    std::vector<Process*> procs;
    procs.reserve(plan->procs.size());
    for (std::uint32_t pi = 0; pi < plan->procs.size(); ++pi) {
      procs.push_back(
          &spawn_plan_proc(sched, pi, chans.data(), clocks.data(), bindings));
    }
    // Declare both endpoints of every channel so deadlock forensics can
    // follow wait-for edges through processes that never touched them.
    for (std::size_t c = 0; c < plan->channels.size(); ++c) {
      const NetworkPlan::ChannelSpec& spec = plan->channels[c];
      if (spec.sender >= 0) chans[c]->declare_sender(*procs[spec.sender]);
      if (spec.receiver >= 0) {
        chans[c]->declare_receiver(*procs[spec.receiver]);
      }
    }

    sched.run();

    metrics.scheduler_rounds = sched.round();
    metrics.faults_injected = injector ? injector->injected() : 0;
    metrics.makespan = sched.makespan();
    metrics.total_transfers = sched.total_transfers();
    for (const Process& p : sched.processes()) {
      metrics.statements += p.statements;
    }
    channel_transfers.reserve(chans.size());
    for (const Channel* chan : chans) {
      channel_transfers.push_back(chan->transfers());
    }
  }

  // Commit extracted values (fast/sharded paths only; the instrumented
  // path already wrote through).
  if (!out_values.empty()) {
    for (const NetworkPlan::ProcSpec& spec : plan->procs) {
      if (spec.kind != NetworkPlan::ProcKind::Output) continue;
      store.scatter(plan->streams[spec.stream],
                    plan->elems.data() + spec.elem_begin,
                    spec.elem_end - spec.elem_begin,
                    out_values.data() + spec.elem_begin);
    }
  }

  // Per-stream transfer totals straight off the plan's channel->stream
  // ids (the legacy path re-parsed "<stream>[pipe].link" display names).
  for (const std::string& stream : plan->streams) {
    metrics.transfers_per_stream[stream] = 0;
  }
  for (std::size_t c = 0; c < plan->channels.size(); ++c) {
    metrics.transfers_per_stream[plan->streams[plan->channels[c].stream]] +=
        channel_transfers[c];
  }
  return metrics;
}

RunMetrics execute_batch(const CompiledProgram& program, const LoopNest& nest,
                         const Env& sizes, IndexedStore* stores,
                         std::size_t batch,
                         const InstantiateOptions& options) {
  if (batch == 0) {
    raise(ErrorKind::Validation, "execute_batch requires batch >= 1");
  }
  if (options.faults != nullptr && !options.faults->empty()) {
    raise(ErrorKind::Validation,
          "batched execution cannot inject faults: fault verdicts are per "
          "instance; run faulted instances individually through execute()");
  }
  const std::string blocker = bytecode_blocker(options);
  if (options.backend == Backend::Bytecode && !blocker.empty()) {
    raise(ErrorKind::Validation,
          "the bytecode backend cannot run with " + blocker +
              "; use --backend=interp");
  }
  const bool use_vm =
      options.backend == Backend::Bytecode ||
      (options.backend == Backend::Auto && batch > 1 && blocker.empty());
  if (use_vm) return run_bytecode(program, nest, sizes, stores, batch, options);

  // Interpreter fallback: the batch is just `batch` independent runs of
  // the same plan (served from the cache after the first). The schedule
  // metrics are identical per instance, so the first run's describe the
  // batch.
  InstantiateOptions per = options;
  per.backend = Backend::Interp;
  RunMetrics metrics;
  for (std::size_t i = 0; i < batch; ++i) {
    RunMetrics m = execute(program, nest, sizes, stores[i], per);
    if (i == 0) metrics = std::move(m);
  }
  metrics.batch = batch;
  return metrics;
}

}  // namespace systolize
