// Host-side storage for indexed variables (the paper's "host" environment,
// Sect. 4.2): data lives here as indexed variables before injection and
// after extraction.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "loopnest/loop_nest.hpp"

namespace systolize {

/// Values of every indexed variable, keyed by variable name and index
/// point. Sparse map representation: absent elements read as 0.
class IndexedStore {
 public:
  using ElementMap = std::map<IntVec, Value, IntVecLess>;

  [[nodiscard]] Value get(const std::string& var, const IntVec& index) const;
  void set(const std::string& var, const IntVec& index, Value value);

  /// Bulk read: out[i] = value of var at indices[i] (absent reads 0).
  /// One variable lookup for the whole batch, vs. one per get() call.
  void gather(const std::string& var, const IntVec* indices,
              std::size_t count, Value* out) const;
  /// Bulk write: var at indices[i] = values[i].
  void scatter(const std::string& var, const IntVec* indices,
               std::size_t count, const Value* values);

  [[nodiscard]] const ElementMap& elements(const std::string& var) const;
  [[nodiscard]] bool has(const std::string& var) const;

  /// Populate a stream's variable over its full (concrete) domain with
  /// values from `init(index)`.
  void fill(const Stream& s, const Env& env,
            const std::function<Value(const IntVec&)>& init);

  /// Enumerate a stream's full concrete domain (row-major).
  [[nodiscard]] static std::vector<IntVec> domain(const Stream& s,
                                                  const Env& env);

  friend bool operator==(const IndexedStore&, const IndexedStore&) = default;

 private:
  std::map<std::string, ElementMap> vars_;
};

}  // namespace systolize
