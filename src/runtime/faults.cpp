#include "runtime/faults.hpp"

#include <sstream>

#include "runtime/scheduler.hpp"
#include "support/error.hpp"

namespace systolize {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Stall: return "stall";
    case FaultKind::Kill: return "kill";
    case FaultKind::Delay: return "delay";
    case FaultKind::Duplicate: return "dup";
  }
  return "?";
}

std::string FaultSpec::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << '@' << target << '=' << at;
  if (kind == FaultKind::Stall || kind == FaultKind::Delay) {
    os << ':' << duration;
  }
  return os.str();
}

// ------------------------------------------------------------- SplitMix64

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double SplitMix64::next_unit() noexcept {
  // 53 random mantissa bits: exact, identical on every platform.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Int SplitMix64::next_int(Int lo, Int hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<Int>(next() % span);
}

// -------------------------------------------------------------- FaultPlan

namespace {

[[noreturn]] void bad_directive(const std::string& piece,
                                const std::string& why) {
  raise(ErrorKind::Validation,
        "fault plan: bad directive '" + piece + "': " + why);
}

Int parse_count(const std::string& piece, const std::string& text) {
  try {
    std::size_t used = 0;
    Int v = std::stoll(text, &used);
    if (used != text.size()) bad_directive(piece, "trailing junk");
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    bad_directive(piece, "expected an integer, got '" + text + "'");
  }
}

double parse_probability(const std::string& piece, const std::string& text) {
  double p = 0.0;
  try {
    std::size_t used = 0;
    p = std::stod(text, &used);
    if (used != text.size()) bad_directive(piece, "trailing junk");
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    bad_directive(piece, "expected a probability, got '" + text + "'");
  }
  if (p < 0.0 || p > 1.0) {
    bad_directive(piece, "probability must be in [0, 1]");
  }
  return p;
}

/// Split "A:B" into its two halves; B is optional when `b_default` >= 0.
std::pair<std::string, std::string> split_colon(const std::string& piece,
                                                const std::string& text,
                                                bool b_required) {
  std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    if (b_required) bad_directive(piece, "expected '<a>:<b>'");
    return {text, ""};
  }
  return {text.substr(0, colon), text.substr(colon + 1)};
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  FaultProfile profile;
  std::istringstream in(text);
  std::string piece;
  while (std::getline(in, piece, ';')) {
    if (piece.empty()) continue;
    std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      bad_directive(piece, "expected '<directive>=<value>'");
    }
    std::string lhs = piece.substr(0, eq);
    std::string rhs = piece.substr(eq + 1);
    std::size_t at_pos = lhs.find('@');
    std::string key = lhs.substr(0, at_pos);
    std::string target =
        at_pos == std::string::npos ? "" : lhs.substr(at_pos + 1);

    if (key == "seed") {
      plan.set_seed(static_cast<std::uint64_t>(parse_count(piece, rhs)));
    } else if (key == "stall" && !target.empty()) {
      auto [a, b] = split_colon(piece, rhs, true);
      FaultSpec spec{FaultKind::Stall, target, parse_count(piece, a),
                     parse_count(piece, b)};
      if (spec.at < 0 || spec.duration < 1) {
        bad_directive(piece, "need round >= 0 and duration >= 1");
      }
      plan.add(std::move(spec));
    } else if (key == "kill" && !target.empty()) {
      FaultSpec spec{FaultKind::Kill, target, parse_count(piece, rhs), 0};
      if (spec.at < 1) bad_directive(piece, "statement index must be >= 1");
      plan.add(std::move(spec));
    } else if (key == "delay" && !target.empty()) {
      auto [a, b] = split_colon(piece, rhs, true);
      FaultSpec spec{FaultKind::Delay, target, parse_count(piece, a),
                     parse_count(piece, b)};
      if (spec.at < 0 || spec.duration < 1) {
        bad_directive(piece, "need transfer >= 0 and duration >= 1");
      }
      plan.add(std::move(spec));
    } else if (key == "dup" && !target.empty()) {
      FaultSpec spec{FaultKind::Duplicate, target, parse_count(piece, rhs),
                     0};
      if (spec.at < 0) bad_directive(piece, "transfer index must be >= 0");
      plan.add(std::move(spec));
    } else if (key == "stall") {
      auto [a, b] = split_colon(piece, rhs, true);
      profile.stall_probability = parse_probability(piece, a);
      profile.max_stall_rounds = parse_count(piece, b);
      if (profile.max_stall_rounds < 1) {
        bad_directive(piece, "max stall rounds must be >= 1");
      }
    } else if (key == "delay") {
      auto [a, b] = split_colon(piece, rhs, true);
      profile.delay_probability = parse_probability(piece, a);
      profile.max_delay_rounds = parse_count(piece, b);
      if (profile.max_delay_rounds < 1) {
        bad_directive(piece, "max delay rounds must be >= 1");
      }
    } else if (key == "dup") {
      profile.duplicate_probability = parse_probability(piece, rhs);
    } else if (key == "kill") {
      auto [a, b] = split_colon(piece, rhs, true);
      profile.kill_probability = parse_probability(piece, a);
      profile.max_kill_statement = parse_count(piece, b);
      if (profile.max_kill_statement < 1) {
        bad_directive(piece, "max kill statement must be >= 1");
      }
    } else {
      bad_directive(piece, "unknown directive '" + key + "'");
    }
  }
  plan.set_profile(profile);
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  os << "seed=" << seed_;
  if (profile_.stall_probability > 0.0) {
    os << ";stall=" << profile_.stall_probability << ':'
       << profile_.max_stall_rounds;
  }
  if (profile_.delay_probability > 0.0) {
    os << ";delay=" << profile_.delay_probability << ':'
       << profile_.max_delay_rounds;
  }
  if (profile_.duplicate_probability > 0.0) {
    os << ";dup=" << profile_.duplicate_probability;
  }
  if (profile_.kill_probability > 0.0) {
    os << ";kill=" << profile_.kill_probability << ':'
       << profile_.max_kill_statement;
  }
  for (const FaultSpec& spec : specs_) os << ';' << spec.to_string();
  return os.str();
}

// ---------------------------------------------------------- FaultInjector

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan), rng_(plan.seed()) {}

void FaultInjector::on_spawn(Process& proc) {
  for (const FaultSpec& spec : plan_.specs()) {
    if (spec.target != proc.name) continue;
    if (spec.kind == FaultKind::Stall) {
      proc.fault_stall_round = spec.at;
      proc.fault_stall_duration = spec.duration;
    } else if (spec.kind == FaultKind::Kill) {
      proc.fault_kill_at = spec.at;
    }
  }
  const FaultProfile& prof = plan_.profile();
  // The rolls below consume PRNG state in a fixed order per spawn; since
  // spawn order is deterministic, so is the whole fault schedule.
  if (prof.stall_probability > 0.0 &&
      rng_.next_unit() < prof.stall_probability &&
      proc.fault_stall_round < 0) {
    proc.fault_stall_round = rng_.next_int(0, 2 * prof.max_stall_rounds);
    proc.fault_stall_duration = rng_.next_int(1, prof.max_stall_rounds);
  }
  if (prof.kill_probability > 0.0 &&
      rng_.next_unit() < prof.kill_probability && proc.fault_kill_at < 0) {
    proc.fault_kill_at = rng_.next_int(1, prof.max_kill_statement);
  }
}

Int FaultInjector::roll_delay(const Channel& chan) {
  for (std::size_t i = 0; i < plan_.specs().size(); ++i) {
    const FaultSpec& spec = plan_.specs()[i];
    if (spec.kind != FaultKind::Delay || spec.target != chan.name()) continue;
    if (chan.transfers() != spec.at) continue;
    if (fired_.size() <= i) fired_.resize(plan_.specs().size(), false);
    if (fired_[i]) continue;
    fired_[i] = true;
    record(FaultKind::Delay, chan.name(), spec.duration);
    return spec.duration;
  }
  const FaultProfile& prof = plan_.profile();
  if (prof.delay_probability > 0.0 &&
      rng_.next_unit() < prof.delay_probability) {
    Int d = rng_.next_int(1, prof.max_delay_rounds);
    record(FaultKind::Delay, chan.name(), d);
    return d;
  }
  return 0;
}

bool FaultInjector::roll_duplicate(const Channel& chan, Int transfer_index) {
  for (std::size_t i = 0; i < plan_.specs().size(); ++i) {
    const FaultSpec& spec = plan_.specs()[i];
    if (spec.kind != FaultKind::Duplicate || spec.target != chan.name()) {
      continue;
    }
    if (transfer_index != spec.at) continue;
    if (fired_.size() <= i) fired_.resize(plan_.specs().size(), false);
    if (fired_[i]) continue;
    fired_[i] = true;
    record(FaultKind::Duplicate, chan.name(), transfer_index);
    return true;
  }
  const FaultProfile& prof = plan_.profile();
  if (prof.duplicate_probability > 0.0 &&
      rng_.next_unit() < prof.duplicate_probability) {
    record(FaultKind::Duplicate, chan.name(), transfer_index);
    return true;
  }
  return false;
}

void FaultInjector::record(FaultKind kind, const std::string& target,
                           Int detail) {
  std::string entry = std::string(fault_kind_name(kind)) + " " + target +
                      " " + std::to_string(detail);
  std::lock_guard<std::mutex> lock(log_mu_);
  log_.push_back(std::move(entry));
}

}  // namespace systolize
