#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "support/error.hpp"

namespace systolize::service {

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void Client::connect() {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    raise(ErrorKind::Validation, "client: socket path too long");
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    raise(ErrorKind::Io,
          "client: socket() failed: " + std::string(std::strerror(errno)));
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    close();
    raise(ErrorKind::Io,
          "client: cannot connect to '" + socket_path_ + "': " + why);
  }
}

void Client::send(const Request& req) {
  if (fd_ < 0) connect();
  const std::string line = req.to_json() + '\n';
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n =
        ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      close();
      raise(ErrorKind::Io, "client: send failed (server gone?)");
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string Client::read_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      close();
      raise(ErrorKind::Io, "client: connection closed by server");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

Response Client::recv() {
  if (fd_ < 0) {
    raise(ErrorKind::Io, "client: not connected");
  }
  return parse_response(read_line());
}

Response Client::call(const Request& req) {
  send(req);
  return recv();
}

Response Client::call_with_retry(const Request& req, Int max_attempts) {
  Response last;
  for (Int attempt = 0; attempt < max_attempts; ++attempt) {
    Int wait_ms = 10;
    try {
      last = call(req);
      if (last.status != "rejected" && last.status != "shutting-down") {
        return last;
      }
      if (last.retry_after_ms >= 0) wait_ms = last.retry_after_ms;
    } catch (const Error& e) {
      if (e.kind() != ErrorKind::Io) throw;
      // Connection-level hiccup: reconnect on the next attempt. Report
      // the failure as a response if the budget runs out.
      last = Response{};
      last.id = req.id;
      last.op = req.op;
      last.status = "error";
      last.kind = error_kind_name(ErrorKind::Io);
      last.retryable = true;
      last.verdict = last.kind;
      last.message = e.what();
    }
    if (attempt + 1 < max_attempts) {
      std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
    }
  }
  return last;
}

}  // namespace systolize::service
