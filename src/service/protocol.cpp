#include "service/protocol.hpp"

#include <sstream>

#include "service/json.hpp"
#include "support/error.hpp"

namespace systolize::service {

namespace {

bool known_op(const std::string& op) {
  return op == "ping" || op == "compile" || op == "expand" || op == "run" ||
         op == "verify" || op == "analyze" || op == "stats" ||
         op == "shutdown";
}

}  // namespace

std::string Request::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"op\":" << json_quote(op);
  if (!tenant.empty()) os << ",\"tenant\":" << json_quote(tenant);
  if (!design.empty()) os << ",\"design\":" << json_quote(design);
  if (!source.empty()) os << ",\"source\":" << json_quote(source);
  os << ",\"n\":" << n << ",\"m\":" << m;
  if (capacity != 0) os << ",\"capacity\":" << capacity;
  if (partition != 0) os << ",\"partition\":" << partition;
  if (merge_buffers) os << ",\"merge_buffers\":true";
  if (threads != 0) os << ",\"threads\":" << threads;
  if (verify) os << ",\"verify\":true";
  if (!inject.empty()) os << ",\"inject\":" << json_quote(inject);
  if (!backend.empty()) os << ",\"backend\":" << json_quote(backend);
  if (batch != 1) os << ",\"batch\":" << batch;
  if (round_budget != 0) os << ",\"round_budget\":" << round_budget;
  if (wall_timeout_ms != 0) os << ",\"wall_timeout_ms\":" << wall_timeout_ms;
  if (fail_attempts != 0) os << ",\"fail_attempts\":" << fail_attempts;
  os << '}';
  return os.str();
}

Request parse_request(const std::string& line) {
  Json doc = Json::parse(line);
  if (!doc.is_object()) {
    raise(ErrorKind::Validation, "request must be a JSON object");
  }
  Request req;
  req.id = doc.int_or("id", 0);
  req.op = doc.str_or("op", "");
  if (req.op.empty()) {
    raise(ErrorKind::Validation, "request is missing \"op\"");
  }
  if (!known_op(req.op)) {
    raise(ErrorKind::Validation, "unknown op \"" + req.op + "\"");
  }
  req.tenant = doc.str_or("tenant", "");
  req.design = doc.str_or("design", "");
  req.source = doc.str_or("source", "");
  req.n = doc.int_or("n", 8);
  req.m = doc.int_or("m", 3);
  req.capacity = doc.int_or("capacity", 0);
  req.partition = doc.int_or("partition", 0);
  req.merge_buffers = doc.bool_or("merge_buffers", false);
  req.threads = doc.int_or("threads", 0);
  req.verify = doc.bool_or("verify", false);
  req.inject = doc.str_or("inject", "");
  req.backend = doc.str_or("backend", "");
  req.batch = doc.int_or("batch", 1);
  req.round_budget = doc.int_or("round_budget", 0);
  req.wall_timeout_ms = doc.int_or("wall_timeout_ms", 0);
  req.fail_attempts = doc.int_or("fail_attempts", 0);
  if (req.n < 1 || req.m < 1) {
    raise(ErrorKind::Validation, "sizes must be >= 1");
  }
  if (req.round_budget < 0 || req.wall_timeout_ms < 0 ||
      req.fail_attempts < 0 || req.threads < 0 || req.capacity < 0 ||
      req.partition < 0) {
    raise(ErrorKind::Validation, "numeric request fields must be >= 0");
  }
  if (req.batch < 1) {
    raise(ErrorKind::Validation, "\"batch\" must be >= 1");
  }
  if (!req.backend.empty() && req.backend != "interp" &&
      req.backend != "bytecode") {
    raise(ErrorKind::Validation,
          "unknown backend \"" + req.backend +
              "\" (expected \"interp\" or \"bytecode\")");
  }
  const bool needs_design = req.op == "compile" || req.op == "expand" ||
                            req.op == "run" || req.op == "verify" ||
                            req.op == "analyze";
  if (needs_design && req.design.empty() && req.source.empty()) {
    raise(ErrorKind::Validation,
          "op \"" + req.op + "\" needs a \"design\" or \"source\"");
  }
  return req;
}

std::string Response::to_json() const {
  std::ostringstream os;
  os << "{\"id\":" << id << ",\"op\":" << json_quote(op)
     << ",\"status\":" << json_quote(status);
  if (!verdict.empty()) os << ",\"verdict\":" << json_quote(verdict);
  if (!kind.empty()) {
    os << ",\"kind\":" << json_quote(kind)
       << ",\"retryable\":" << (retryable ? "true" : "false");
  }
  if (retries > 0) os << ",\"retries\":" << retries;
  if (retry_after_ms >= 0) os << ",\"retry_after_ms\":" << retry_after_ms;
  if (!message.empty()) os << ",\"message\":" << json_quote(message);
  if (!diagnostic_json.empty()) os << ",\"diagnostic\":" << diagnostic_json;
  if (!metrics_json.empty()) os << ",\"metrics\":" << metrics_json;
  if (!data_json.empty()) os << ",\"data\":" << data_json;
  os << '}';
  return os.str();
}

namespace {

/// Re-serialize a parsed subtree, for round-tripping raw payload fields.
std::string dump(const Json& v) {
  switch (v.type()) {
    case Json::Type::Null: return "null";
    case Json::Type::Bool: return v.as_bool() ? "true" : "false";
    case Json::Type::Number: {
      std::ostringstream os;
      if (v.as_double() == static_cast<double>(v.as_int())) {
        os << v.as_int();
      } else {
        os << v.as_double();
      }
      return os.str();
    }
    case Json::Type::String: return json_quote(v.as_string());
    case Json::Type::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.size(); ++i) {
        if (i != 0) out += ',';
        out += dump(v.at(i));
      }
      return out + "]";
    }
    case Json::Type::Object: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, child] : v.fields()) {
        if (!first) out += ',';
        first = false;
        out += json_quote(key) + ":" + dump(child);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace

Response parse_response(const std::string& line) {
  Json doc = Json::parse(line);
  if (!doc.is_object()) {
    raise(ErrorKind::Validation, "response must be a JSON object");
  }
  Response r;
  r.id = doc.int_or("id", 0);
  r.op = doc.str_or("op", "");
  r.status = doc.str_or("status", "");
  r.verdict = doc.str_or("verdict", "");
  r.kind = doc.str_or("kind", "");
  r.retryable = doc.bool_or("retryable", false);
  r.retries = doc.int_or("retries", 0);
  r.retry_after_ms = doc.int_or("retry_after_ms", -1);
  r.message = doc.str_or("message", "");
  if (const Json* d = doc.get("diagnostic")) r.diagnostic_json = dump(*d);
  if (const Json* m = doc.get("metrics")) r.metrics_json = dump(*m);
  if (const Json* x = doc.get("data")) r.data_json = dump(*x);
  return r;
}

bool definite_verdict(const Response& r) {
  if (r.status == "ok") return !r.verdict.empty();
  if (r.status == "error") return !r.kind.empty();
  if (r.status == "rejected" || r.status == "shutting-down") return true;
  return false;
}

}  // namespace systolize::service
