#include "service/request_queue.hpp"

#include <algorithm>

namespace systolize::service {

bool coalescible(const Request& req) {
  return req.op == "run" && req.inject.empty() && req.fail_attempts == 0;
}

bool requests_coalesce(const Request& a, const Request& b) {
  return coalescible(a) && coalescible(b) && a.design == b.design &&
         a.source == b.source && a.n == b.n && a.m == b.m &&
         a.capacity == b.capacity && a.partition == b.partition &&
         a.merge_buffers == b.merge_buffers && a.threads == b.threads &&
         a.verify == b.verify && a.backend == b.backend &&
         a.round_budget == b.round_budget &&
         a.wall_timeout_ms == b.wall_timeout_ms;
}

Int RequestQueue::backoff_hint_locked() const {
  // Deterministic, occupancy-proportional hint: an idle-ish server asks
  // the client back quickly, a saturated one spreads retries out. Capped
  // so a shed request never waits longer than a second before asking
  // again.
  const std::size_t backlog = queue_.size() - head_;
  return static_cast<Int>(std::min<std::size_t>(1000, 25 * (backlog + 1)));
}

Admission RequestQueue::try_push(Job job) {
  std::lock_guard<std::mutex> lock(mu_);
  Admission a;
  if (closed_) {
    ++shed_closed_;
    a.reason = "shutting down";
    a.retry_after_ms = 0;  // retry against a restarted server, not this one
    return a;
  }
  const std::size_t backlog = queue_.size() - head_;
  if (backlog >= depth_) {
    ++shed_queue_full_;
    a.reason = "queue full";
    a.retry_after_ms = backoff_hint_locked();
    return a;
  }
  std::size_t& tenant_count = tenant_inflight_[job.req.tenant];
  if (tenant_cap_ > 0 && tenant_count >= tenant_cap_) {
    ++shed_tenant_cap_;
    a.reason = "tenant cap";
    a.retry_after_ms = backoff_hint_locked();
    return a;
  }
  ++tenant_count;
  ++in_flight_;
  high_water_ = std::max(high_water_, in_flight_);
  ++admitted_;
  queue_.push_back(std::move(job));
  a.admitted = true;
  ready_cv_.notify_one();
  return a;
}

std::optional<Job> RequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [this] { return head_ < queue_.size() || closed_; });
  if (head_ >= queue_.size()) return std::nullopt;  // closed and drained
  Job job = std::move(queue_[head_]);
  ++head_;
  if (head_ == queue_.size() || head_ >= 64) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return job;
}

std::vector<Job> RequestQueue::pop_group(std::size_t max_group) {
  std::unique_lock<std::mutex> lock(mu_);
  ready_cv_.wait(lock, [this] { return head_ < queue_.size() || closed_; });
  std::vector<Job> group;
  if (head_ >= queue_.size()) return group;  // closed and drained
  group.push_back(std::move(queue_[head_]));
  ++head_;
  if (max_group > 1 && coalescible(group.front().req)) {
    // Sweep the backlog for jobs that share this dispatch. Extraction
    // preserves the FIFO order of everything left behind.
    for (std::size_t i = head_;
         i < queue_.size() && group.size() < max_group;) {
      if (requests_coalesce(group.front().req, queue_[i].req)) {
        group.push_back(std::move(queue_[i]));
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  if (head_ == queue_.size() || head_ >= 64) {
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  return group;
}

void RequestQueue::finish(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && it->second > 0) {
    if (--it->second == 0) tenant_inflight_.erase(it);
  }
  if (in_flight_ > 0) --in_flight_;
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void RequestQueue::close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  ready_cv_.notify_all();
  if (in_flight_ == 0) idle_cv_.notify_all();
}

void RequestQueue::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t RequestQueue::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() - head_;
}

std::size_t RequestQueue::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

std::size_t RequestQueue::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

std::size_t RequestQueue::shed_queue_full() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_queue_full_;
}

std::size_t RequestQueue::shed_tenant_cap() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_tenant_cap_;
}

std::size_t RequestQueue::shed_closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_closed_;
}

std::size_t RequestQueue::high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace systolize::service
