#include "service/degradation.hpp"

#include <sstream>

namespace systolize::service {

const char* degrade_level_name(DegradeLevel level) noexcept {
  switch (level) {
    case DegradeLevel::Normal: return "Normal";
    case DegradeLevel::ReducedCache: return "ReducedCache";
    case DegradeLevel::SingleThread: return "SingleThread";
  }
  return "Unknown";
}

void Degradation::apply_level_locked() {
  cache_.set_byte_budget(level_ == DegradeLevel::Normal
                             ? config_.cache_budget
                             : config_.reduced_cache_budget);
}

void Degradation::on_pressure() {
  std::lock_guard<std::mutex> lock(mu_);
  successes_since_pressure_ = 0;
  if (level_ != DegradeLevel::SingleThread) {
    level_ = static_cast<DegradeLevel>(static_cast<int>(level_) + 1);
    ++escalations_;
    apply_level_locked();
  }
}

void Degradation::on_success() {
  std::lock_guard<std::mutex> lock(mu_);
  if (level_ == DegradeLevel::Normal) return;
  if (++successes_since_pressure_ < config_.recovery_successes) return;
  successes_since_pressure_ = 0;
  level_ = static_cast<DegradeLevel>(static_cast<int>(level_) - 1);
  ++recoveries_;
  apply_level_locked();
}

DegradeLevel Degradation::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

unsigned Degradation::effective_threads(unsigned requested) const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_ == DegradeLevel::SingleThread ? 0 : requested;
}

std::size_t Degradation::escalations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return escalations_;
}

std::size_t Degradation::recoveries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recoveries_;
}

std::string Degradation::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"level\":\"" << degrade_level_name(level_)
     << "\",\"escalations\":" << escalations_
     << ",\"recoveries\":" << recoveries_ << '}';
  return os.str();
}

}  // namespace systolize::service
