#include "service/executor.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <sstream>

#include "analysis/cost.hpp"
#include "analysis/verify.hpp"
#include "baseline/sequential.hpp"
#include "frontend/parser.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "service/json.hpp"
#include "service/request_queue.hpp"
#include "support/error.hpp"

namespace systolize::service {

namespace {

Env sizes_of(const Design& design, const Request& req) {
  Env sizes;
  for (const Symbol& s : design.nest.sizes()) {
    if (s.name() == "m") {
      sizes["m"] = Rational(req.m);
    } else {
      sizes[s.name()] = Rational(req.n);
    }
  }
  return sizes;
}

PlanShape shape_of(const Design& design, const Request& req) {
  PlanShape shape;
  shape.channel_capacity = req.capacity;
  shape.merge_internal_buffers = req.merge_buffers;
  if (req.partition > 0) {
    std::vector<Int> comps(design.nest.depth() - 1, req.partition);
    shape.partition_grid = IntVec(comps);
  }
  return shape;
}

/// Same deterministic value seeding as the CLI's run command, so daemon
/// runs and one-shot runs verify against identical inputs. Instance `b`
/// of a batch is deterministically perturbed (instance 0 stays the
/// historical single-run seeding).
IndexedStore seeded_store(const Design& design, const Env& sizes,
                          Int b = 0) {
  return make_initial_store(
      design.nest, sizes, [b](const std::string& var, const IntVec& p) {
        Value h = var.empty() ? 1 : var[0];
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return (h + 13 * b) % 23 - 11;
      });
}

Backend backend_of(const Request& req) {
  if (req.backend == "interp") return Backend::Interp;
  if (req.backend == "bytecode") return Backend::Bytecode;
  return Backend::Auto;  // parse_request already rejected anything else
}

Response error_response(const Request& req, const Error& e, Int retries) {
  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "error";
  r.kind = error_kind_name(e.kind());
  r.retryable = e.retryable();
  r.retries = retries;
  r.verdict = r.kind;  // the classified kind IS the definite verdict
  r.message = e.what();
  r.diagnostic_json = e.diagnostic();
  return r;
}

}  // namespace

void DeadlineTimer::arm(Int ms) {
  if (ms <= 0) return;
  disarm();
  fired_.store(false, std::memory_order_relaxed);
  stop_ = false;
  thread_ = std::thread([this, ms] {
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, std::chrono::milliseconds(ms),
                     [this] { return stop_; })) {
      return;  // disarmed before the deadline
    }
    fired_.store(true, std::memory_order_relaxed);
  });
}

void DeadlineTimer::disarm() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

Executor::Executor(ExecutorConfig config)
    : config_(config),
      plan_cache_(config.cache_budget),
      degradation_(
          DegradationConfig{config.cache_budget, config.reduced_cache_budget,
                            config.recovery_successes},
          plan_cache_) {}

std::shared_ptr<const Executor::CompiledEntry> Executor::compiled_for(
    const Request& req, bool* cached) {
  // Inline source keys on the text itself, catalog designs on the name.
  // The compile happens under the lock: compilation is cheap (symbolic,
  // no network construction) and a single cached CompiledProgram per key
  // is what keeps its generation — and with it the PlanCache template —
  // stable across requests.
  const std::string key =
      req.source.empty() ? "design:" + req.design : "source:" + req.source;
  std::lock_guard<std::mutex> lock(compile_mu_);
  auto it = compiled_.find(key);
  if (it != compiled_.end()) {
    if (cached != nullptr) *cached = true;
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++compile_cache_hits_;
    }
    return it->second;
  }
  if (cached != nullptr) *cached = false;
  Design design = req.source.empty() ? design_by_name(req.design)
                                     : frontend::parse_design(req.source);
  CompiledProgram prog = compile(design.nest, design.spec);
  auto entry =
      std::make_shared<CompiledEntry>(std::move(design), std::move(prog));
  compiled_.emplace(key, entry);
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++compile_cache_misses_;
  }
  return entry;
}

Response Executor::handle(const Request& req) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++op_counts_[req.op];
  }
  Response r;
  try {
    r = dispatch(req);
  } catch (const Error& e) {
    r = error_response(req, e, 0);
  } catch (const std::bad_alloc&) {
    degradation_.on_pressure();
    Error e(ErrorKind::Overload,
            "out of memory; server degraded to " +
                std::string(degrade_level_name(degradation_.level())));
    r = error_response(req, e, 0);
  } catch (const std::exception& e) {
    Error wrapped(ErrorKind::Internal, e.what());
    r = error_response(req, wrapped, 0);
  }
  count_outcome(r);
  return r;
}

void Executor::count_outcome(const Response& r) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (r.status == "ok") {
    ++ok_;
    if (r.verdict == "retried-success") ++retried_successes_;
  } else {
    ++errors_;
    if (r.kind == "Timeout") ++timeouts_;
  }
  retries_ += static_cast<std::size_t>(r.retries);
}

Response Executor::dispatch(const Request& req) {
  Response r;
  r.id = req.id;
  r.op = req.op;
  if (req.op == "ping" || req.op == "shutdown") {
    r.status = "ok";
    r.verdict = "success";
    return r;
  }
  if (req.op == "stats") {
    r.status = "ok";
    r.verdict = "success";
    r.data_json = stats_json();
    return r;
  }
  if (req.op == "compile") return handle_compile(req);
  if (req.op == "expand") return handle_expand(req);
  if (req.op == "run") return handle_run(req);
  if (req.op == "verify") return handle_verify(req);
  if (req.op == "analyze") return handle_analyze(req);
  raise(ErrorKind::Validation, "unknown op \"" + req.op + "\"");
}

Response Executor::handle_compile(const Request& req) {
  bool cached = false;
  auto ce = compiled_for(req, &cached);
  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "ok";
  r.verdict = "success";
  std::ostringstream data;
  data << "{\"name\":" << json_quote(ce->prog.name)
       << ",\"generation\":" << ce->prog.generation
       << ",\"depth\":" << ce->prog.depth
       << ",\"cached\":" << (cached ? "true" : "false") << '}';
  r.data_json = data.str();
  return r;
}

Response Executor::handle_expand(const Request& req) {
  auto ce = compiled_for(req, nullptr);
  Env sizes = sizes_of(ce->design, req);
  PlanCache::LookupStats stats;
  auto plan = plan_cache_.lookup_or_build(ce->prog, ce->design.nest, sizes,
                                          shape_of(ce->design, req), &stats);
  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "ok";
  r.verdict = "success";
  std::ostringstream data;
  data << "{\"processes\":" << plan->procs.size()
       << ",\"channels\":" << plan->channels.size()
       << ",\"comp\":" << plan->comp_count
       << ",\"bytes\":" << plan->memory_bytes()
       << ",\"plan_hit\":" << (stats.plan_hit ? "true" : "false")
       << ",\"template_hit\":" << (stats.template_hit ? "true" : "false")
       << '}';
  r.data_json = data.str();
  return r;
}

Response Executor::run_attempt(const CompiledEntry& ce, const Request& req) {
  Env sizes = sizes_of(ce.design, req);

  InstantiateOptions iopt;
  iopt.channel_capacity = req.capacity;
  iopt.merge_internal_buffers = req.merge_buffers;
  if (req.partition > 0) {
    std::vector<Int> comps(ce.design.nest.depth() - 1, req.partition);
    iopt.partition_grid = IntVec(comps);
  }
  iopt.plan_cache = &plan_cache_;
  iopt.backend = backend_of(req);

  FaultPlan plan;
  if (!req.inject.empty()) {
    plan = FaultPlan::parse(req.inject);
    iopt.faults = &plan;
  }

  // Sharded eligibility: the work-stealing substrate carries round
  // budgets, wall-clock deadlines and cancel tokens natively, so a
  // threaded request keeps its server-default protections. Only fault
  // injection forces the sequential instrumented path — requests may ask
  // for sequential-only fault kinds (delay/duplicate) and the service
  // promises every inject spec works.
  const unsigned threads =
      degradation_.effective_threads(static_cast<unsigned>(req.threads));
  const bool sharded = threads > 1 && req.inject.empty();
  if (sharded) {
    iopt.threads = threads;
    iopt.worker_pool = &pool_;
  }
  DeadlineTimer deadline;
  iopt.watchdog.max_rounds =
      req.round_budget > 0 ? req.round_budget : config_.default_round_budget;
  const Int wall_ms = req.wall_timeout_ms > 0 ? req.wall_timeout_ms
                                              : config_.default_wall_timeout_ms;
  if (wall_ms > 0) {
    deadline.arm(wall_ms);
    iopt.watchdog.cancel = deadline.token();
    iopt.watchdog.cancel_kind = ErrorKind::Timeout;
    iopt.watchdog.cancel_reason =
        "wall-clock deadline of " + std::to_string(wall_ms) + "ms exceeded";
  }

  const std::size_t batch = static_cast<std::size_t>(req.batch);

  if (batch > 1 && iopt.faults != nullptr) {
    // Faulted batches have per-instance semantics: a kill is a verdict
    // for ONE instance, never for the batch. Replay each instance
    // through the instrumented engine with its own derived fault seed
    // and report a verdict per instance in the data payload.
    std::ostringstream instances;
    std::size_t failures = 0;
    Int faults_total = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      FaultPlan per_plan = FaultPlan::parse(req.inject);
      per_plan.set_seed(per_plan.seed() + b);
      InstantiateOptions per = iopt;
      per.faults = &per_plan;
      IndexedStore store =
          seeded_store(ce.design, sizes, static_cast<Int>(b));
      IndexedStore expected = store;
      std::string verdict = "success";
      std::string detail;
      try {
        RunMetrics m =
            execute(ce.prog, ce.design.nest, sizes, store, per);
        faults_total += m.faults_injected;
        if (req.verify) {
          run_sequential(ce.design.nest, sizes, expected);
          for (const Stream& s : ce.design.nest.streams()) {
            if (store.elements(s.name()) != expected.elements(s.name())) {
              verdict = "Inconsistent";
              detail = "differential check failed for stream " + s.name();
              ++failures;
              break;
            }
          }
        }
      } catch (const Error& e) {
        verdict = error_kind_name(e.kind());
        const std::string what = e.what();
        detail = what.substr(0, what.find('\n'));
        ++failures;
      }
      if (b != 0) instances << ',';
      instances << "{\"instance\":" << b << ",\"verdict\":"
                << json_quote(verdict);
      if (!detail.empty()) instances << ",\"message\":" << json_quote(detail);
      instances << '}';
    }
    deadline.disarm();
    Response r;
    r.id = req.id;
    r.op = req.op;
    r.status = "ok";
    r.verdict = failures == 0 ? "success" : "instance-failures";
    std::ostringstream data;
    data << "{\"batch\":" << batch << ",\"failures\":" << failures
         << ",\"faults_injected\":" << faults_total << ",\"instances\":["
         << instances.str() << "]}";
    r.data_json = data.str();
    return r;
  }

  if (batch > 1) {
    std::vector<IndexedStore> stores;
    stores.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      stores.push_back(seeded_store(ce.design, sizes, static_cast<Int>(b)));
    }
    RunMetrics metrics = execute_batch(ce.prog, ce.design.nest, sizes,
                                       stores.data(), batch, iopt);
    deadline.disarm();
    note_run_metrics(metrics);
    if (req.verify) {
      for (std::size_t b = 0; b < batch; ++b) {
        IndexedStore expected =
            seeded_store(ce.design, sizes, static_cast<Int>(b));
        run_sequential(ce.design.nest, sizes, expected);
        for (const Stream& s : ce.design.nest.streams()) {
          if (stores[b].elements(s.name()) != expected.elements(s.name())) {
            raise(ErrorKind::Inconsistent,
                  "differential check failed for instance " +
                      std::to_string(b) + " stream " + s.name() +
                      " (batched run disagrees with sequential baseline)");
          }
        }
      }
    }
    Response r;
    r.id = req.id;
    r.op = req.op;
    r.status = "ok";
    r.verdict = "success";
    r.metrics_json = metrics.to_json();
    return r;
  }

  IndexedStore store = seeded_store(ce.design, sizes);
  IndexedStore expected = store;
  RunMetrics metrics = execute(ce.prog, ce.design.nest, sizes, store, iopt);
  deadline.disarm();
  note_run_metrics(metrics);

  if (req.verify) {
    run_sequential(ce.design.nest, sizes, expected);
    for (const Stream& s : ce.design.nest.streams()) {
      if (store.elements(s.name()) != expected.elements(s.name())) {
        raise(ErrorKind::Inconsistent,
              "differential check failed for stream " + s.name() +
                  " (parallel run disagrees with sequential baseline)");
      }
    }
  }

  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "ok";
  r.verdict = "success";
  r.metrics_json = metrics.to_json();
  return r;
}

void Executor::note_run_metrics(const RunMetrics& metrics) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (!metrics.workers.empty()) {
    ++substrate_runs_;
    for (const WorkerCounters& w : metrics.workers) {
      substrate_steals_ += w.steals;
      substrate_tasks_ += w.tasks;
      substrate_idle_ns_ += w.idle_ns;
    }
  }
  if (metrics.backend == "bytecode") {
    ++bytecode_runs_;
    bytecode_instances_ += metrics.batch;
    max_batch_ = std::max(max_batch_, metrics.batch);
  }
}

std::vector<Response> Executor::handle_group(
    const std::vector<Request>& reqs) {
  if (reqs.empty()) return {};
  if (reqs.size() == 1) return {handle(reqs.front())};
  try {
    std::vector<Response> rs = group_attempt(reqs);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      for (const Request& req : reqs) ++op_counts_[req.op];
      ++coalesced_groups_;
      coalesced_requests_ += reqs.size();
    }
    for (const Response& r : rs) count_outcome(r);
    degradation_.on_success();
    return rs;
  } catch (...) {
    // Coalescing is an optimization, never a semantic change: on ANY
    // group-dispatch failure, serve each request independently — that
    // path carries the full retry/degradation/classification machinery.
    std::vector<Response> rs;
    rs.reserve(reqs.size());
    for (const Request& req : reqs) rs.push_back(handle(req));
    return rs;
  }
}

std::vector<Response> Executor::group_attempt(
    const std::vector<Request>& reqs) {
  const Request& proto = reqs.front();
  if (proto.fail_attempts > 0) {
    // The solo path's transient-failure hook (handle_run): the group
    // attempt has no retry loop of its own, so an injected failure always
    // faults the whole batch and exercises handle_group's fall-back —
    // every member re-runs independently through the full retry
    // machinery.
    raise(ErrorKind::Io, "injected transient failure (test hook), group");
  }
  auto ce = compiled_for(proto, nullptr);
  Env sizes = sizes_of(ce->design, proto);

  // Lanes are request-major: request j's instances are contiguous, each
  // seeded exactly as they would be in a solo run of that request — a
  // coalesced response is bit-identical to an uncoalesced one.
  std::size_t lanes = 0;
  for (const Request& r : reqs) lanes += static_cast<std::size_t>(r.batch);
  std::vector<IndexedStore> stores;
  stores.reserve(lanes);
  for (const Request& r : reqs) {
    for (Int b = 0; b < r.batch; ++b) {
      stores.push_back(seeded_store(ce->design, sizes, b));
    }
  }

  InstantiateOptions iopt;
  iopt.channel_capacity = proto.capacity;
  iopt.merge_internal_buffers = proto.merge_buffers;
  if (proto.partition > 0) {
    std::vector<Int> comps(ce->design.nest.depth() - 1, proto.partition);
    iopt.partition_grid = IntVec(comps);
  }
  iopt.plan_cache = &plan_cache_;
  iopt.backend = backend_of(proto);
  const unsigned threads =
      degradation_.effective_threads(static_cast<unsigned>(proto.threads));
  if (threads > 1) {
    iopt.threads = threads;
    iopt.worker_pool = &pool_;
  }
  DeadlineTimer deadline;
  iopt.watchdog.max_rounds = proto.round_budget > 0
                                 ? proto.round_budget
                                 : config_.default_round_budget;
  const Int wall_ms = proto.wall_timeout_ms > 0
                          ? proto.wall_timeout_ms
                          : config_.default_wall_timeout_ms;
  if (wall_ms > 0) {
    deadline.arm(wall_ms);
    iopt.watchdog.cancel = deadline.token();
    iopt.watchdog.cancel_kind = ErrorKind::Timeout;
    iopt.watchdog.cancel_reason =
        "wall-clock deadline of " + std::to_string(wall_ms) + "ms exceeded";
  }

  RunMetrics metrics = execute_batch(ce->prog, ce->design.nest, sizes,
                                     stores.data(), lanes, iopt);
  deadline.disarm();
  note_run_metrics(metrics);

  if (proto.verify) {
    // Only req.batch distinct seedings exist across the group; verify
    // each distinct instance index once against the sequential baseline,
    // then compare every lane against its index's expectation.
    std::map<Int, IndexedStore> expected_by_instance;
    std::size_t lane = 0;
    for (const Request& r : reqs) {
      for (Int b = 0; b < r.batch; ++b, ++lane) {
        auto it = expected_by_instance.find(b);
        if (it == expected_by_instance.end()) {
          IndexedStore expected = seeded_store(ce->design, sizes, b);
          run_sequential(ce->design.nest, sizes, expected);
          it = expected_by_instance.emplace(b, std::move(expected)).first;
        }
        for (const Stream& s : ce->design.nest.streams()) {
          if (stores[lane].elements(s.name()) !=
              it->second.elements(s.name())) {
            raise(ErrorKind::Inconsistent,
                  "differential check failed for coalesced lane " +
                      std::to_string(lane) + " stream " + s.name());
          }
        }
      }
    }
  }

  std::ostringstream coalesced;
  coalesced << "{\"coalesced\":true,\"group\":" << reqs.size()
            << ",\"lanes\":" << lanes << '}';
  std::vector<Response> rs;
  rs.reserve(reqs.size());
  for (const Request& req : reqs) {
    Response r;
    r.id = req.id;
    r.op = req.op;
    r.status = "ok";
    r.verdict = "success";
    r.metrics_json = metrics.to_json();
    r.data_json = coalesced.str();
    rs.push_back(std::move(r));
  }
  return rs;
}

Response Executor::handle_run(const Request& req) {
  auto ce = compiled_for(req, nullptr);
  Int attempt = 0;
  for (;;) {
    try {
      if (attempt < req.fail_attempts) {
        raise(ErrorKind::Io,
              "injected transient failure (test hook), attempt " +
                  std::to_string(attempt));
      }
      Response r = run_attempt(*ce, req);
      r.retries = attempt;
      if (attempt > 0) r.verdict = "retried-success";
      degradation_.on_success();
      return r;
    } catch (const std::bad_alloc&) {
      degradation_.on_pressure();
      Error e(ErrorKind::Overload,
              "out of memory during run; server degraded to " +
                  std::string(degrade_level_name(degradation_.level())));
      if (attempt >= config_.max_retries) return error_response(req, e, attempt);
    } catch (const Error& e) {
      if (!e.retryable() || attempt >= config_.max_retries) {
        return error_response(req, e, attempt);
      }
    }
    // Capped exponential backoff before the next attempt.
    Int delay = config_.backoff_base_ms;
    for (Int i = 0; i < attempt && delay < config_.backoff_cap_ms; ++i) {
      delay *= 2;
    }
    if (delay > config_.backoff_cap_ms) delay = config_.backoff_cap_ms;
    if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    ++attempt;
  }
}

Response Executor::handle_verify(const Request& req) {
  auto ce = compiled_for(req, nullptr);
  VerifyReport rep;
  rep.design = req.design.empty() ? ce->prog.name : req.design;
  verify_spec_into(rep, ce->design.nest, ce->design.spec);
  if (rep.errors() == 0) {
    verify_program_into(rep, ce->prog, ce->design.nest);
    if (rep.errors() == 0) {
      Env sizes = sizes_of(ce->design, req);
      auto plan = plan_cache_.lookup_or_build(ce->prog, ce->design.nest, sizes,
                                              shape_of(ce->design, req));
      verify_plan_into(rep, *plan);
    }
  }
  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "ok";
  r.verdict = rep.errors() == 0 ? "clean" : "findings";
  r.data_json = rep.to_json();
  return r;
}

Response Executor::handle_analyze(const Request& req) {
  Response r;
  r.id = req.id;
  r.op = req.op;
  r.status = "ok";
  // Verifier-first, like the CLI: a design the verifier rejects has no
  // meaningful cost — return its findings under the "findings" verdict.
  // The spec rules run before compilation so a broken design cannot
  // throw out of compile() and classify as a request error.
  Design design = req.source.empty() ? design_by_name(req.design)
                                     : frontend::parse_design(req.source);
  VerifyReport rep;
  rep.design = req.design.empty() ? design.nest.name() : req.design;
  verify_spec_into(rep, design.nest, design.spec);
  if (rep.errors() > 0) {
    r.verdict = "findings";
    r.data_json = rep.to_json();
    return r;
  }
  auto ce = compiled_for(req, nullptr);
  verify_program_into(rep, ce->prog, ce->design.nest);
  if (rep.errors() > 0) {
    r.verdict = "findings";
    r.data_json = rep.to_json();
    return r;
  }
  const CostReport cost =
      analyze_cost(ce->prog, ce->design.nest, {sizes_of(ce->design, req)},
                   shape_of(ce->design, req), &plan_cache_);
  r.verdict = "success";
  r.data_json = cost.to_json();
  return r;
}

std::string Executor::stats_json() const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    os << "{\"requests\":{";
    bool first = true;
    for (const auto& [op, count] : op_counts_) {
      if (!first) os << ',';
      first = false;
      os << json_quote(op) << ':' << count;
    }
    os << "},\"ok\":" << ok_ << ",\"errors\":" << errors_
       << ",\"retries\":" << retries_
       << ",\"retried_successes\":" << retried_successes_
       << ",\"timeouts\":" << timeouts_
       << ",\"compile_cache\":{\"hits\":" << compile_cache_hits_
       << ",\"misses\":" << compile_cache_misses_ << '}'
       << ",\"substrate\":{\"runs\":" << substrate_runs_
       << ",\"steals\":" << substrate_steals_
       << ",\"tasks\":" << substrate_tasks_
       << ",\"idle_ns\":" << substrate_idle_ns_
       << ",\"pool_threads\":" << pool_.spawned() << '}'
       << ",\"bytecode\":{\"runs\":" << bytecode_runs_
       << ",\"batched_instances\":" << bytecode_instances_
       << ",\"max_batch\":" << max_batch_
       << ",\"coalesced_groups\":" << coalesced_groups_
       << ",\"coalesced_requests\":" << coalesced_requests_ << '}';
  }
  os << ",\"plan_cache\":{\"plans\":" << plan_cache_.size()
     << ",\"hits\":" << plan_cache_.hits()
     << ",\"misses\":" << plan_cache_.misses()
     << ",\"template_hits\":" << plan_cache_.template_hits()
     << ",\"template_compiles\":" << plan_cache_.template_compiles()
     << ",\"evictions\":" << plan_cache_.evictions()
     << ",\"bytes\":" << plan_cache_.bytes()
     << ",\"budget\":" << plan_cache_.byte_budget()
     << ",\"bytecode_programs\":" << plan_cache_.bytecode_size()
     << ",\"bytecode_hits\":" << plan_cache_.bytecode_hits()
     << ",\"bytecode_misses\":" << plan_cache_.bytecode_misses()
     << ",\"bytecode_evictions\":" << plan_cache_.bytecode_evictions()
     << ",\"bytecode_bytes\":" << plan_cache_.bytecode_bytes() << '}';
  os << ",\"degradation\":" << degradation_.to_json();
  if (queue_ != nullptr) {
    os << ",\"admission\":{\"admitted\":" << queue_->admitted()
       << ",\"shed_queue_full\":" << queue_->shed_queue_full()
       << ",\"shed_tenant_cap\":" << queue_->shed_tenant_cap()
       << ",\"shed_closed\":" << queue_->shed_closed()
       << ",\"high_water\":" << queue_->high_water()
       << ",\"queued\":" << queue_->queued()
       << ",\"in_flight\":" << queue_->in_flight() << '}';
  }
  os << '}';
  return os.str();
}

}  // namespace systolize::service
