// systolize serve: the long-running daemon. One Unix-domain stream
// socket; each connection carries newline-delimited JSON requests
// (service/protocol.hpp) that flow through admission control
// (service/request_queue.hpp) into a fixed worker pool running the
// Executor. Responses are written back on the request's connection,
// correlated by id — a client may pipeline and receive out of order.
//
// Lifecycle contract (the SIGTERM test in ci.sh exercises this):
//   1. stop accepting connections,
//   2. close the queue — in-flight and queued requests DRAIN through the
//      workers; new requests get a "shutting-down" rejection,
//   3. wait for the drain barrier, join the workers,
//   4. wake blocked readers, join them, unlink the socket,
//   5. flush a final stats line, return from wait() — the CLI exits 0.
//
// Worker threads never die on a request failure: the Executor catches
// and classifies everything (see service/executor.hpp), so a wedged or
// faulted run costs its deadline, not the pool.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/executor.hpp"
#include "service/request_queue.hpp"

namespace systolize::service {

struct ServerConfig {
  std::string socket_path;
  std::size_t workers = 4;
  std::size_t queue_depth = 64;   ///< admitted-but-unfinished cap
  std::size_t tenant_cap = 16;    ///< per-tenant in-flight cap (0 = off)
  ExecutorConfig executor;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind the socket, start workers and the acceptor. Throws Error(Io)
  /// when the socket cannot be created or bound.
  void start();

  /// Trigger graceful shutdown (idempotent, thread-safe; also reachable
  /// via the wire "shutdown" op and the installed signal handlers).
  void shutdown();

  /// Block until shutdown has fully drained; joins every thread, unlinks
  /// the socket and emits the final stats line via `final_stats()`.
  void wait();

  [[nodiscard]] bool stopping() const {
    return stop_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Executor& executor() { return executor_; }
  [[nodiscard]] RequestQueue& queue() { return queue_; }

  /// Stats snapshot flushed at shutdown (also readable after wait()).
  [[nodiscard]] std::string final_stats() const { return final_stats_; }

  /// SIGTERM/SIGINT -> graceful shutdown of the running server;
  /// SIGPIPE ignored (a client hanging up mid-response must not kill the
  /// daemon). Call once before start().
  static void install_signal_handlers();

 private:
  struct Conn {
    int fd = -1;
    std::mutex write_mu;
    ~Conn();
  };

  void accept_loop();
  void reader_loop(std::shared_ptr<Conn> conn);
  void worker_loop();
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  static void send_line(Conn& conn, const std::string& line);

  const ServerConfig config_;
  RequestQueue queue_;
  Executor executor_;
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> readers_;
  std::string final_stats_;
  bool started_ = false;
  bool waited_ = false;
};

}  // namespace systolize::service
