// The service's request engine: everything between a parsed Request and
// a definite Response, independent of sockets and threads so tests and
// benchmarks can drive it directly.
//
// Fault isolation contract: handle() NEVER throws. Every failure mode —
// parse errors, validation, watchdog trips, wall-clock deadlines,
// injected faults, even std::bad_alloc — is caught at this boundary and
// classified into an error Response (stable ErrorKind name + retryable
// bit + forensic diagnostic when one exists). A wedged run is cancelled
// by the deadline timer through the scheduler's cooperative cancel token
// and reported with its DeadlockReport; the worker thread survives to
// take the next job.
//
// Retry policy: failures whose kind is retryable (error_kind_retryable)
// are re-attempted up to `max_retries` times with capped exponential
// backoff; terminal kinds return immediately. A request that succeeds
// after retries reports verdict "retried-success" so callers can see the
// transient. Deterministic failures (an injected kill, a structural
// deadlock) reproduce the same forensics on every attempt and then
// classify as errors — retry makes transients invisible, not faults.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "designs/catalog.hpp"
#include "runtime/plan_cache.hpp"
#include "runtime/worker_pool.hpp"
#include "scheme/types.hpp"
#include "service/degradation.hpp"
#include "service/protocol.hpp"

namespace systolize {
struct RunMetrics;
}

namespace systolize::service {

class RequestQueue;

/// One-shot wall-clock deadline: arm(ms) starts a timer thread that sets
/// the cancel token when the deadline passes; the scheduler polls the
/// token at round boundaries (WatchdogConfig::cancel) and turns it into a
/// structured Error. Destruction (or disarm) joins the thread without
/// firing. One timer per run attempt.
class DeadlineTimer {
 public:
  DeadlineTimer() = default;
  ~DeadlineTimer() { disarm(); }
  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  void arm(Int ms);
  void disarm();
  [[nodiscard]] const std::atomic<bool>* token() const { return &fired_; }
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> fired_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

struct ExecutorConfig {
  /// Watchdog round budget applied when the request does not choose one
  /// (0 = unbounded). Generous: the largest catalog runs take thousands
  /// of rounds, a wedged one spins forever without this.
  Int default_round_budget = 2'000'000;
  /// Wall-clock deadline applied when the request does not choose one
  /// (0 = none).
  Int default_wall_timeout_ms = 10'000;
  /// Attempts beyond the first for retryable failures.
  Int max_retries = 2;
  /// Capped exponential backoff: base * 2^attempt, capped.
  Int backoff_base_ms = 5;
  Int backoff_cap_ms = 100;
  /// Plan-cache budgets (Normal / degraded — see DegradationConfig).
  std::size_t cache_budget = PlanCache::kDefaultByteBudget;
  std::size_t reduced_cache_budget = std::size_t{1} * 1024 * 1024;
  std::size_t recovery_successes = 32;
};

class Executor {
 public:
  explicit Executor(ExecutorConfig config = {});

  /// Serve one request; never throws. (`shutdown` and admission are the
  /// server's business — handle() treats an incoming "shutdown" op as a
  /// plain acknowledgement.)
  [[nodiscard]] Response handle(const Request& req);

  /// Serve a coalesced group of run requests (RequestQueue::pop_group)
  /// with ONE batched dispatch: the requests' instances become SoA lanes
  /// of a single bytecode run, so k warm requests pay one schedule
  /// instead of k. Every request gets its own response (same order as
  /// `reqs`), marked with a "coalesced" data payload. Coalescing is an
  /// optimization, never a semantic change: any group-dispatch failure
  /// falls back to independent handle() calls, preserving per-request
  /// retry and degradation behaviour. Never throws.
  [[nodiscard]] std::vector<Response> handle_group(
      const std::vector<Request>& reqs);

  /// Optional: let the stats op report admission counters too.
  void set_queue(const RequestQueue* queue) { queue_ = queue; }

  [[nodiscard]] PlanCache& plan_cache() { return plan_cache_; }
  [[nodiscard]] Degradation& degradation() { return degradation_; }
  [[nodiscard]] const ExecutorConfig& config() const { return config_; }

  /// Stats payload (the stats op's data field): request counters, plan
  /// cache, compile cache, degradation, admission (when a queue is set).
  [[nodiscard]] std::string stats_json() const;

 private:
  /// Compiled-program cache entry. Programs are cached per design name /
  /// source text so repeated requests reuse one CompiledProgram
  /// generation — the PlanCache templates key on that generation, so
  /// without this cache every request would recompile its template.
  struct CompiledEntry {
    CompiledEntry(Design d, CompiledProgram p)
        : design(std::move(d)), prog(std::move(p)) {}
    Design design;
    CompiledProgram prog;
  };

  [[nodiscard]] std::shared_ptr<const CompiledEntry> compiled_for(
      const Request& req, bool* cached);
  [[nodiscard]] Response dispatch(const Request& req);
  [[nodiscard]] Response handle_compile(const Request& req);
  [[nodiscard]] Response handle_expand(const Request& req);
  [[nodiscard]] Response handle_run(const Request& req);
  [[nodiscard]] Response run_attempt(const CompiledEntry& ce,
                                     const Request& req);
  [[nodiscard]] std::vector<Response> group_attempt(
      const std::vector<Request>& reqs);
  [[nodiscard]] Response handle_verify(const Request& req);
  [[nodiscard]] Response handle_analyze(const Request& req);
  void count_outcome(const Response& r);
  /// Accumulate substrate and bytecode-backend counters off a run.
  void note_run_metrics(const RunMetrics& metrics);

  const ExecutorConfig config_;
  PlanCache plan_cache_;
  Degradation degradation_;
  /// Shared across requests: parallel runs borrow their extra workers
  /// here instead of spawning threads per run (warm-serve latency).
  WorkerPool pool_;
  const RequestQueue* queue_ = nullptr;

  mutable std::mutex compile_mu_;
  std::map<std::string, std::shared_ptr<const CompiledEntry>> compiled_;

  mutable std::mutex stats_mu_;
  std::map<std::string, std::size_t> op_counts_;
  std::size_t ok_ = 0;
  std::size_t errors_ = 0;
  std::size_t retries_ = 0;           ///< total extra attempts spent
  std::size_t retried_successes_ = 0;
  std::size_t timeouts_ = 0;          ///< error responses with kind Timeout
  std::size_t compile_cache_hits_ = 0;
  std::size_t compile_cache_misses_ = 0;
  /// Work-stealing substrate totals accumulated over sharded runs.
  std::size_t substrate_runs_ = 0;
  Int substrate_steals_ = 0;
  Int substrate_tasks_ = 0;
  Int substrate_idle_ns_ = 0;
  /// Bytecode backend and request-coalescing counters.
  std::size_t bytecode_runs_ = 0;       ///< dispatches the VM executed
  std::size_t bytecode_instances_ = 0;  ///< SoA lanes across those runs
  std::size_t max_batch_ = 0;           ///< widest single dispatch seen
  std::size_t coalesced_groups_ = 0;    ///< shared dispatches (group > 1)
  std::size_t coalesced_requests_ = 0;  ///< requests riding those groups
};

}  // namespace systolize::service
