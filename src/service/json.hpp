// Minimal JSON value: exactly what the service's line-framed wire
// protocol needs (parse a request object, read typed fields, quote
// strings on the way out) and nothing more. The repo's JSON *output*
// remains hand-formatted ostringstream code (metrics, findings, deadlock
// reports) — this adds the missing *input* direction without pulling in
// a dependency the container doesn't have.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "numeric/checked.hpp"

namespace systolize::service {

/// Immutable parsed JSON value. Objects and arrays own their children.
class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;

  /// Parse one complete JSON document; trailing non-whitespace is an
  /// error. Throws Error(Parse) with position information on malformed
  /// input — the server turns that into a protocol-error response rather
  /// than dropping the connection.
  [[nodiscard]] static Json parse(const std::string& text);

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::Object;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::String;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::Number;
  }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::Null; }

  [[nodiscard]] bool as_bool() const;          ///< throws unless Bool
  [[nodiscard]] Int as_int() const;            ///< throws unless Number
  [[nodiscard]] double as_double() const;      ///< throws unless Number
  [[nodiscard]] const std::string& as_string() const;  ///< throws unless String

  /// Object field access; null when absent or not an object.
  [[nodiscard]] const Json* get(const std::string& key) const;

  /// Typed object-field readers with defaults (absent or null fields fall
  /// back; wrong-typed fields throw Error(Validation) naming the key).
  [[nodiscard]] Int int_or(const std::string& key, Int fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string str_or(const std::string& key,
                                   const std::string& fallback) const;

  [[nodiscard]] std::size_t size() const;            ///< array/object arity
  [[nodiscard]] const Json& at(std::size_t i) const; ///< array element
  [[nodiscard]] const std::map<std::string, Json>& fields() const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  Int int_ = 0;
  bool integral_ = false;  ///< number fits (and was written as) an Int
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;

  friend class Parser;
};

/// JSON string literal (including the quotes) for `s`.
[[nodiscard]] std::string json_quote(const std::string& s);

}  // namespace systolize::service
