// Admission control: the bounded queue between connection readers and the
// worker pool. Load is shed at the door, not discovered by timeout — a
// request is either admitted (and will get a worker) or rejected
// immediately with a retry-after hint, the 429 discipline. Two limits:
//
//   * queue depth — total requests admitted but not yet completed may not
//     exceed depth + workers; beyond that the server is saturated and
//     accepting more would only grow latency unboundedly.
//   * per-tenant in-flight cap — one hot tenant may not occupy the whole
//     queue; admission counts each tenant's queued + executing requests
//     and sheds that tenant first while others still fit.
//
// The queue is closed for admission during shutdown: already-admitted
// requests drain through the workers (the SIGTERM contract), new ones are
// rejected as "shutting-down".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "service/protocol.hpp"

namespace systolize::service {

/// One admitted unit of work: the parsed request plus the completion
/// callback that delivers the response (to a socket, a test vector, ...).
/// Keeping the sink abstract keeps the queue and executor free of any
/// socket dependency.
struct Job {
  Request req;
  std::function<void(const Response&)> respond;
};

/// Outcome of an admission attempt.
struct Admission {
  bool admitted = false;
  std::string reason;       ///< "queue full" | "tenant cap" | "shutting down"
  Int retry_after_ms = 0;   ///< backoff hint for rejected requests
};

/// True when `req` may ride a shared batched dispatch at all: a clean run
/// op with no fault plan and no transient-failure test hook. (Faulted
/// runs have per-instance semantics, and the fail_attempts hook must
/// exercise the per-request retry path.)
[[nodiscard]] bool coalescible(const Request& req);

/// True when two coalescible requests hit the same expanded plan with the
/// same execution options and may therefore share one batched dispatch.
/// Batch sizes may differ (lanes add up); tenants and ids may differ.
[[nodiscard]] bool requests_coalesce(const Request& a, const Request& b);

class RequestQueue {
 public:
  RequestQueue(std::size_t depth, std::size_t tenant_cap)
      : depth_(depth), tenant_cap_(tenant_cap) {}

  /// Admit or shed `job`. Never blocks. The job's tenant stays "in
  /// flight" until finish() — admission counts executing requests, not
  /// just queued ones, so a tenant cannot monopolize the workers by
  /// keeping the queue itself short.
  [[nodiscard]] Admission try_push(Job job);

  /// Block until a job is available or the queue is closed and drained;
  /// nullopt means "closed and empty — worker should exit".
  [[nodiscard]] std::optional<Job> pop();

  /// Like pop(), but when the popped job is a coalescible warm run
  /// request, also extract every queued job that may share one batched
  /// dispatch with it (same design/sizes/shape/engine, no per-request
  /// attachments — see requests_coalesce), up to `max_group` jobs total.
  /// Tenants are deliberately not part of the key: each job still
  /// finishes against its own tenant bucket. An empty vector means
  /// "closed and drained — worker should exit".
  [[nodiscard]] std::vector<Job> pop_group(std::size_t max_group);

  /// Mark one of `tenant`'s requests complete (worker calls this after
  /// responding).
  void finish(const std::string& tenant);

  /// Close for admission (shutdown): subsequent try_push is rejected,
  /// blocked pops return once the backlog drains.
  void close();

  /// Block until every admitted request has finished (drain barrier for
  /// graceful shutdown).
  void wait_idle();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t queued() const;     ///< waiting for a worker
  [[nodiscard]] std::size_t in_flight() const;  ///< queued + executing
  // --- admission counters (lifetime totals) ---
  [[nodiscard]] std::size_t admitted() const;
  [[nodiscard]] std::size_t shed_queue_full() const;
  [[nodiscard]] std::size_t shed_tenant_cap() const;
  [[nodiscard]] std::size_t shed_closed() const;
  [[nodiscard]] std::size_t high_water() const;  ///< max in_flight seen

 private:
  [[nodiscard]] Int backoff_hint_locked() const;

  const std::size_t depth_;
  const std::size_t tenant_cap_;
  mutable std::mutex mu_;
  std::condition_variable ready_cv_;
  std::condition_variable idle_cv_;
  std::vector<Job> queue_;  ///< FIFO; pop takes from the front
  std::size_t head_ = 0;    ///< index of the front (amortized compaction)
  std::map<std::string, std::size_t> tenant_inflight_;
  std::size_t in_flight_ = 0;
  bool closed_ = false;
  std::size_t admitted_ = 0;
  std::size_t shed_queue_full_ = 0;
  std::size_t shed_tenant_cap_ = 0;
  std::size_t shed_closed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace systolize::service
