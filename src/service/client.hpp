// Client side of the service protocol: connect to the daemon's socket,
// send request lines, read response lines. Used by `systolize client`,
// the ci.sh serve smoke stage and the soak tests.
#pragma once

#include <string>

#include "service/protocol.hpp"

namespace systolize::service {

class Client {
 public:
  explicit Client(std::string socket_path)
      : socket_path_(std::move(socket_path)) {}
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect (or reconnect). Throws Error(Io) when the daemon is absent.
  void connect();
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Fire one request line (connects lazily). Throws Error(Io).
  void send(const Request& req);

  /// Block for the next response line. Throws Error(Io) on EOF — the
  /// server went away mid-conversation.
  [[nodiscard]] Response recv();

  /// send + recv. For pipelined use, send() several then recv() several
  /// and correlate by id.
  [[nodiscard]] Response call(const Request& req);

  /// call(), honoring the admission-control contract: "rejected" and
  /// "shutting-down" responses and Io failures are retried after the
  /// server's retry_after_ms hint (or a small default), up to
  /// `max_attempts` total. Returns the last response; a response whose
  /// status is still "rejected" after the budget means the server stayed
  /// saturated.
  [[nodiscard]] Response call_with_retry(const Request& req,
                                         Int max_attempts = 8);

 private:
  [[nodiscard]] std::string read_line();

  std::string socket_path_;
  int fd_ = -1;
  std::string buf_;
};

}  // namespace systolize::service
