// Graceful degradation under memory pressure: a three-level state
// machine that trades throughput for survival instead of dying.
//
//   Normal        — full plan-cache budget, sharded runs allowed.
//   ReducedCache  — the plan cache is shrunk to a small budget (templates
//                   are never evicted, so warm requests degrade to one
//                   integer expansion each, not to re-derivation).
//   SingleThread  — additionally, sharded execution is refused: every run
//                   is sequential, bounding peak memory to one network.
//
// Escalation is driven by observed pressure (std::bad_alloc caught at the
// executor boundary); recovery steps back one level after a run of
// consecutive successes, so a single transient spike does not pin the
// server in degraded mode forever.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>

#include "runtime/plan_cache.hpp"

namespace systolize::service {

enum class DegradeLevel { Normal = 0, ReducedCache = 1, SingleThread = 2 };

[[nodiscard]] const char* degrade_level_name(DegradeLevel level) noexcept;

struct DegradationConfig {
  /// Budget restored to the plan cache at Normal.
  std::size_t cache_budget = PlanCache::kDefaultByteBudget;
  /// Budget applied at ReducedCache and below.
  std::size_t reduced_cache_budget = std::size_t{1} * 1024 * 1024;
  /// Consecutive successful requests required to step back one level.
  std::size_t recovery_successes = 32;
};

class Degradation {
 public:
  Degradation(DegradationConfig config, PlanCache& cache)
      : config_(config), cache_(cache) {}

  /// Record a memory-pressure event: escalate one level and apply the
  /// level's cache budget immediately.
  void on_pressure();

  /// Record a successfully completed request; after
  /// `recovery_successes` in a row, step back one level.
  void on_success();

  [[nodiscard]] DegradeLevel level() const;

  /// Thread count a run may actually use: the request's ask at Normal
  /// and ReducedCache, forced sequential (0) at SingleThread.
  [[nodiscard]] unsigned effective_threads(unsigned requested) const;

  [[nodiscard]] std::size_t escalations() const;
  [[nodiscard]] std::size_t recoveries() const;

  /// {"level":"Normal","escalations":0,"recoveries":0} — spliced into the
  /// stats op's payload.
  [[nodiscard]] std::string to_json() const;

 private:
  void apply_level_locked();

  const DegradationConfig config_;
  PlanCache& cache_;
  mutable std::mutex mu_;
  DegradeLevel level_ = DegradeLevel::Normal;
  std::size_t successes_since_pressure_ = 0;
  std::size_t escalations_ = 0;
  std::size_t recoveries_ = 0;
};

}  // namespace systolize::service
