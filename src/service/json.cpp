#include "service/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace systolize::service {

namespace {

[[noreturn]] void bad(const std::string& why, std::size_t pos) {
  raise(ErrorKind::Parse,
        "json: " + why + " at offset " + std::to_string(pos));
}

}  // namespace

/// Recursive-descent parser over the input string. Depth is bounded to
/// keep a hostile request from exhausting the stack — requests are flat
/// objects, so the bound is generous.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) bad("trailing characters", pos_);
    return v;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) bad("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      bad(std::string("expected '") + c + "', got '" + peek() + "'", pos_);
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) bad("nesting too deep", pos_);
    skip_ws();
    char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string_value();
      case 't':
        if (consume_literal("true")) return make_bool(true);
        bad("bad literal", pos_);
      case 'f':
        if (consume_literal("false")) return make_bool(false);
        bad("bad literal", pos_);
      case 'n':
        if (consume_literal("null")) return Json{};
        bad("bad literal", pos_);
      default: return parse_number();
    }
  }

  static Json make_bool(bool b) {
    Json v;
    v.type_ = Json::Type::Bool;
    v.bool_ = b;
    return v;
  }

  Json parse_object(int depth) {
    Json v;
    v.type_ = Json::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array(int depth) {
    Json v;
    v.type_ = Json::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json parse_string_value() {
    Json v;
    v.type_ = Json::Type::String;
    v.str_ = parse_string();
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) bad("unterminated string", pos_);
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        bad("raw control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) bad("unterminated escape", pos_);
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) bad("truncated \\u escape", pos_);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              bad("bad hex digit in \\u escape", pos_ - 1);
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // needed by the protocol; lone surrogates encode as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: bad("bad escape", pos_ - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      bad("bad number", start);
    }
    const std::string tok = text_.substr(start, pos_ - start);
    Json v;
    v.type_ = Json::Type::Number;
    errno = 0;
    char* end = nullptr;
    v.num_ = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      bad("bad number '" + tok + "'", start);
    }
    if (integral) {
      errno = 0;
      long long iv = std::strtoll(tok.c_str(), &end, 10);
      if (*end == '\0' && errno != ERANGE) {
        v.int_ = iv;
        v.integral_ = true;
      }
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) raise(ErrorKind::Validation, "json: not a bool");
  return bool_;
}

Int Json::as_int() const {
  if (type_ != Type::Number) {
    raise(ErrorKind::Validation, "json: not a number");
  }
  if (integral_) return int_;
  return static_cast<Int>(num_);
}

double Json::as_double() const {
  if (type_ != Type::Number) {
    raise(ErrorKind::Validation, "json: not a number");
  }
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) raise(ErrorKind::Validation, "json: not a string");
  return str_;
}

const Json* Json::get(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

Int Json::int_or(const std::string& key, Int fallback) const {
  const Json* v = get(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_number()) {
    raise(ErrorKind::Validation, "json: field '" + key + "' must be a number");
  }
  return v->as_int();
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* v = get(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_bool()) {
    raise(ErrorKind::Validation, "json: field '" + key + "' must be a bool");
  }
  return v->as_bool();
}

std::string Json::str_or(const std::string& key,
                         const std::string& fallback) const {
  const Json* v = get(key);
  if (v == nullptr || v->is_null()) return fallback;
  if (!v->is_string()) {
    raise(ErrorKind::Validation, "json: field '" + key + "' must be a string");
  }
  return v->as_string();
}

std::size_t Json::size() const {
  if (type_ == Type::Array) return arr_.size();
  if (type_ == Type::Object) return obj_.size();
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::Array || i >= arr_.size()) {
    raise(ErrorKind::Validation, "json: array index out of range");
  }
  return arr_[i];
}

const std::map<std::string, Json>& Json::fields() const {
  if (type_ != Type::Object) {
    raise(ErrorKind::Validation, "json: not an object");
  }
  return obj_;
}

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace systolize::service
