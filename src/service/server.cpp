#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>

#include "support/error.hpp"

namespace systolize::service {

namespace {

/// Hard cap on one request line; anything longer is a protocol abuse and
/// the connection is dropped rather than buffered without bound.
constexpr std::size_t kMaxLineBytes = std::size_t{4} * 1024 * 1024;

/// Signal flag polled by the acceptor (a handler may only touch
/// lock-free atomics; the actual shutdown work happens on the acceptor
/// thread, not in signal context).
std::atomic<bool> g_signal_stop{false};

void on_signal(int) { g_signal_stop.store(true, std::memory_order_relaxed); }

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_depth, config_.tenant_cap),
      executor_(config_.executor) {
  executor_.set_queue(&queue_);
}

Server::~Server() {
  shutdown();
  if (started_ && !waited_) wait();
}

void Server::install_signal_handlers() {
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
}

void Server::start() {
  if (config_.socket_path.empty()) {
    raise(ErrorKind::Validation, "serve: socket path must not be empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socket_path.size() >= sizeof(addr.sun_path)) {
    raise(ErrorKind::Validation,
          "serve: socket path too long (" + config_.socket_path + ")");
  }
  std::strncpy(addr.sun_path, config_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    raise(ErrorKind::Io, "serve: socket() failed: " +
                             std::string(std::strerror(errno)));
  }
  ::unlink(config_.socket_path.c_str());  // stale socket from a dead server
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    raise(ErrorKind::Io,
          "serve: cannot bind '" + config_.socket_path + "': " + why);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    raise(ErrorKind::Io, "serve: listen() failed: " + why);
  }

  const std::size_t workers = config_.workers == 0 ? 1 : config_.workers;
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  acceptor_ = std::thread([this] { accept_loop(); });
  started_ = true;
}

void Server::shutdown() { stop_.store(true, std::memory_order_relaxed); }

void Server::accept_loop() {
  for (;;) {
    if (stop_.load(std::memory_order_relaxed) ||
        g_signal_stop.load(std::memory_order_relaxed)) {
      break;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);  // 200ms shutdown-poll cadence
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
    readers_.emplace_back([this, conn] { reader_loop(conn); });
  }
  shutdown();  // a signal landed: make the stop visible to wait()
}

void Server::send_line(Conn& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  std::string framed = line + '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(conn.fd, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client gone; the verdict still counted server-side
    off += static_cast<std::size_t>(n);
  }
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  Request req;
  try {
    req = parse_request(line);
  } catch (const Error& e) {
    Response r;
    r.status = "error";
    r.kind = error_kind_name(e.kind());
    r.retryable = e.retryable();
    r.verdict = r.kind;
    r.message = e.what();
    send_line(*conn, r.to_json());
    return;
  }
  if (req.op == "shutdown") {
    Response r;
    r.id = req.id;
    r.op = req.op;
    r.status = "ok";
    r.verdict = "success";
    r.message = "draining";
    send_line(*conn, r.to_json());
    shutdown();
    return;
  }
  Job job;
  job.req = req;
  job.respond = [this, conn](const Response& r) {
    send_line(*conn, r.to_json());
  };
  const Admission a = queue_.try_push(std::move(job));
  if (!a.admitted) {
    Response r;
    r.id = req.id;
    r.op = req.op;
    r.status = a.reason == "shutting down" ? "shutting-down" : "rejected";
    r.kind = error_kind_name(ErrorKind::Overload);
    r.retryable = true;
    r.retry_after_ms = a.retry_after_ms;
    r.message = a.reason;
    send_line(*conn, r.to_json());
  }
}

void Server::reader_loop(std::shared_ptr<Conn> conn) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF, error, or shutdown() of the fd during drain
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > kMaxLineBytes) break;  // abusive line; drop the client
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      if (nl > start) handle_line(conn, buf.substr(start, nl - start));
      start = nl + 1;
    }
    buf.erase(0, start);
  }
}

void Server::worker_loop() {
  // Warm identical run requests waiting together become SoA lanes of one
  // batched dispatch; the group cap bounds dispatch latency and memory.
  constexpr std::size_t kMaxCoalesce = 64;
  for (;;) {
    std::vector<Job> group = queue_.pop_group(kMaxCoalesce);
    if (group.empty()) return;  // closed and drained
    std::vector<Request> reqs;
    reqs.reserve(group.size());
    for (const Job& job : group) reqs.push_back(job.req);
    const std::vector<Response> rs = executor_.handle_group(reqs);
    for (std::size_t i = 0; i < group.size(); ++i) {
      group[i].respond(rs[i]);
      queue_.finish(group[i].req.tenant);
    }
  }
}

void Server::wait() {
  if (!started_ || waited_) return;
  if (acceptor_.joinable()) acceptor_.join();
  // 1. no new connections (acceptor gone); stop admitting.
  queue_.close();
  // 2. drain: every admitted request gets its worker and its response.
  queue_.wait_idle();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  // 3. wake readers blocked in recv() and join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (std::thread& r : readers_) {
    if (r.joinable()) r.join();
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(config_.socket_path.c_str());
  // 4. flush metrics: the final stats snapshot survives the server.
  final_stats_ = executor_.stats_json();
  waited_ = true;
}

}  // namespace systolize::service
