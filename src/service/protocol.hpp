// Wire protocol of the systolize service: newline-delimited JSON objects
// over a Unix-domain stream socket. One request line in, one response
// line out, correlated by the client-chosen `id`; responses may arrive
// out of order when a client pipelines requests (workers finish in
// whatever order the runs take).
//
// Request fields (all optional except op):
//   id               integer correlation id (echoed back)
//   op               "ping" | "compile" | "expand" | "run" | "verify"
//                    | "analyze" | "stats" | "shutdown"
//   tenant           admission-control bucket; "" = anonymous bucket
//   design           catalog name (see `systolize list`)
//   source           inline .sa program text (overrides design)
//   n, m             problem sizes (defaults 8, 3 — the CLI's defaults)
//   capacity         channel slack (default 0 = rendezvous)
//   partition        processors per PS dimension (default 0 = off)
//   merge_buffers    realize internal buffers as channel capacity
//   threads          requested shard workers (degradation may ignore)
//   verify           run op: differential-check against the sequential
//                    baseline (the CLI's "verify: OK")
//   inject           fault plan, FaultPlan::parse syntax
//   backend          "" (auto) | "interp" | "bytecode" — execution engine
//   batch            independent problem instances per run (default 1);
//                    eligible batched runs execute as SoA lanes of one
//                    bytecode dispatch, faulted ones replay per instance
//                    with derived seeds and per-instance verdicts
//   round_budget     watchdog round budget (0 = server default)
//   wall_timeout_ms  wall-clock deadline (0 = server default)
//   fail_attempts    TEST HOOK: fail the first N execution attempts with
//                    a retryable Io error, to exercise the retry path
//                    deterministically
//
// Response fields:
//   id, op           echoed from the request
//   status           "ok" | "error" | "rejected" | "shutting-down"
//   verdict          definite per-request outcome: "success",
//                    "retried-success", "clean"/"findings" (verify), or
//                    the ErrorKind name of the classified failure
//   kind             ErrorKind name (error/rejected responses)
//   retryable        classification of `kind` (error_kind_retryable)
//   retries          server-side attempts beyond the first
//   retry_after_ms   backoff hint (rejected responses)
//   message          human-readable detail
//   diagnostic       machine-readable payload (DeadlockReport JSON,
//                    verify findings JSON) when the failure carries one
//   metrics          RunMetrics JSON (successful run ops)
//   data             op-specific payload (stats, expand, compile)
#pragma once

#include <string>

#include "numeric/checked.hpp"

namespace systolize::service {

struct Request {
  Int id = 0;
  std::string op;
  std::string tenant;
  std::string design;
  std::string source;
  Int n = 8;
  Int m = 3;
  Int capacity = 0;
  Int partition = 0;
  bool merge_buffers = false;
  Int threads = 0;
  bool verify = false;
  std::string inject;
  std::string backend;  ///< "" = auto
  Int batch = 1;
  Int round_budget = 0;
  Int wall_timeout_ms = 0;
  Int fail_attempts = 0;

  /// Serialize to one request line (no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

/// Parse one request line. Throws Error(Parse) on malformed JSON and
/// Error(Validation) on a structurally valid object with bad fields
/// (unknown op, wrong field type); both carry messages suitable for an
/// error response.
[[nodiscard]] Request parse_request(const std::string& line);

struct Response {
  Int id = 0;
  std::string op;
  std::string status;
  std::string verdict;
  std::string kind;
  bool retryable = false;
  Int retries = 0;
  Int retry_after_ms = -1;  ///< < 0 = omit
  std::string message;
  std::string diagnostic_json;  ///< raw JSON (already serialized), may be ""
  std::string metrics_json;     ///< raw JSON, may be ""
  std::string data_json;        ///< raw JSON, may be ""

  /// Serialize to one response line (no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

/// Parse a response line back into the struct (client side, tests).
[[nodiscard]] Response parse_response(const std::string& line);

/// True when `verdict` is one of the protocol's definite outcomes: the
/// request finished and was classified — the soak harness's liveness
/// criterion ("every request terminates with a definite verdict").
[[nodiscard]] bool definite_verdict(const Response& r);

}  // namespace systolize::service
