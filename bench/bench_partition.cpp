// Experiment X-PART (EXPERIMENTS.md): partitioning onto a bounded
// processor array — the Sect.-8 extension ("not enough processors, either
// in dimension or number ... partitioning [23]"). Virtual processes are
// multiplexed onto a g x g physical grid sharing logical clocks; the
// makespan curve against g shows the classic serialization/speedup
// saturation shape while results stay identical (verified by tests).
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

void partitioned(benchmark::State& state, Int g) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  const Int n = 6;
  Env sizes = sizes_for(design, n);
  InstantiateOptions opt;
  if (g > 0) opt.partition_grid = IntVec{g, g};
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    last = execute(prog, design.nest, sizes, store, opt);
    benchmark::DoNotOptimize(store);
  }
  state.counters["grid"] = static_cast<double>(g);
  state.counters["physical"] = static_cast<double>(last.physical_processors);
  state.counters["virtual"] = static_cast<double>(last.process_count);
  state.counters["makespan"] = static_cast<double>(last.makespan);
  state.counters["statements"] = static_cast<double>(last.statements);
}

void BM_Partition_Full(benchmark::State& s) { partitioned(s, 0); }
void BM_Partition_13x13(benchmark::State& s) { partitioned(s, 13); }
void BM_Partition_8x8(benchmark::State& s) { partitioned(s, 8); }
void BM_Partition_4x4(benchmark::State& s) { partitioned(s, 4); }
void BM_Partition_2x2(benchmark::State& s) { partitioned(s, 2); }
void BM_Partition_1x1(benchmark::State& s) { partitioned(s, 1); }

BENCHMARK(BM_Partition_Full);
BENCHMARK(BM_Partition_13x13);
BENCHMARK(BM_Partition_8x8);
BENCHMARK(BM_Partition_4x4);
BENCHMARK(BM_Partition_2x2);
BENCHMARK(BM_Partition_1x1);

/// Channel-capacity ablation: rendezvous (the paper's model) against
/// small per-channel slack. Slack shortens the makespan slightly (senders
/// decouple) at identical results.
void with_capacity(benchmark::State& state, Int cap) {
  static const Design design = polyprod_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  const Int n = 16;
  Env sizes = sizes_for(design, n);
  InstantiateOptions opt;
  opt.channel_capacity = cap;
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    last = execute(prog, design.nest, sizes, store, opt);
    benchmark::DoNotOptimize(store);
  }
  state.counters["capacity"] = static_cast<double>(cap);
  state.counters["makespan"] = static_cast<double>(last.makespan);
}

void BM_Capacity_Rendezvous(benchmark::State& s) { with_capacity(s, 0); }
void BM_Capacity_1(benchmark::State& s) { with_capacity(s, 1); }
void BM_Capacity_4(benchmark::State& s) { with_capacity(s, 4); }

BENCHMARK(BM_Capacity_Rendezvous);
BENCHMARK(BM_Capacity_1);
BENCHMARK(BM_Capacity_4);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
