// Shared helpers for the benchmark harness.
#pragma once

#include <benchmark/benchmark.h>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"
#include "scheme/process_space.hpp"

namespace systolize::bench {

inline Env sizes_for(const Design& design, Int n) {
  Env env{{"n", Rational(n)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (env.contains(s.name())) continue;
    // Every size symbol gets a deterministic derived extent ("m" keeps
    // its historical n/2) so no design runs with an unbound size.
    env[s.name()] = Rational(std::max<Int>(1, n / 2));
  }
  return env;
}

inline IndexedStore seeded_store(const Design& design, const Env& sizes) {
  return make_initial_store(
      design.nest, sizes, [](const std::string& var, const IntVec& p) {
        Value h = 1099511628211LL * (var.empty() ? 7 : var[0]);
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return h % 17 - 8;
      });
}

/// Execute a design at size n and record the paper-shaped series as
/// benchmark counters: logical makespan, the synchronous step-count
/// reference, process/channel/message counts.
inline void run_and_report(benchmark::State& state, const Design& design,
                           const CompiledProgram& prog, Int n,
                           InstantiateOptions options = {}) {
  Env sizes = sizes_for(design, n);
  // Instantiation is loop-size-dependent but run-independent: amortize it
  // across iterations the way a real serving loop would.
  PlanCache cache;
  if (options.plan_cache == nullptr) options.plan_cache = &cache;
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    last = execute(prog, design.nest, sizes, store, options);
    benchmark::DoNotOptimize(store);
  }
  StepRange range = derive_step_range(design.nest, design.spec.step());
  Int steps = (range.max - range.min).evaluate(sizes).to_integer() + 1;
  state.counters["n"] = static_cast<double>(n);
  state.counters["makespan"] = static_cast<double>(last.makespan);
  state.counters["systolic_steps"] = static_cast<double>(steps);
  state.counters["processes"] = static_cast<double>(last.process_count);
  state.counters["comp_procs"] =
      static_cast<double>(last.computation_processes);
  state.counters["buffer_procs"] = static_cast<double>(last.buffer_processes);
  state.counters["messages"] = static_cast<double>(last.total_transfers);
  state.counters["statements"] = static_cast<double>(last.statements);
  state.counters["seq_statements"] =
      static_cast<double>(design.nest.index_space_size(sizes));
}

}  // namespace systolize::bench
