// Experiment X-SPEC (EXPERIMENTS.md): the generation spectrum of Sect. 8.
//
// At one end, our scheme derives each process's statements at compile
// time: per process the work at run time is O(1) expression evaluation.
// At the other end, run-time generation has each process scan the loop
// bounds to discover its own statements: the EnumerationOracle performs
// exactly that scan, costing O(|IS|) = O((n+1)^r) once per problem size.
// The crossover the paper predicts — compile-time generation amortizes as
// soon as more than one size or run is needed — shows as the oracle's
// superlinear growth against the flat evaluate() cost.
#include "baseline/runtime_generation.hpp"
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

/// Run-time generation: scan the index space and read off every process's
/// first/last/count (what each processor would compute for itself from
/// the loop bounds, Sect. 8 / [3,25]).
void BM_RuntimeGeneration(benchmark::State& state) {
  static const Design design = matmul_design2();
  Env sizes = sizes_for(design, state.range(0));
  for (auto _ : state) {
    EnumerationOracle oracle(design.nest, design.spec, sizes);
    benchmark::DoNotOptimize(oracle);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["index_space"] =
      static_cast<double>(design.nest.index_space_size(sizes));
}
BENCHMARK(BM_RuntimeGeneration)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

/// Compile-time generation: evaluate the symbolic repeaters for every
/// process of the array — the run-time residue of our scheme.
void BM_CompileTimeGeneration(benchmark::State& state) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, state.range(0));
  IntVec lo = prog.ps.min.evaluate(sizes);
  IntVec hi = prog.ps.max.evaluate(sizes);
  for (auto _ : state) {
    Int touched = 0;
    for (Int col = lo[0]; col <= hi[0]; ++col) {
      for (Int row = lo[1]; row <= hi[1]; ++row) {
        Env env = sizes;
        env["col"] = Rational(col);
        env["row"] = Rational(row);
        const AffinePoint* first = prog.repeater.first.select(env);
        if (first != nullptr) {
          benchmark::DoNotOptimize(first->evaluate(env));
          ++touched;
        }
      }
    }
    benchmark::DoNotOptimize(touched);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["processes"] =
      static_cast<double>((hi[0] - lo[0] + 1) * (hi[1] - lo[1] + 1));
}
BENCHMARK(BM_CompileTimeGeneration)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

/// Per-process comparison: one process discovering its own chord. The
/// scheme evaluates two affine expressions; run-time generation scans the
/// whole index space even for a single process.
void BM_PerProcessScheme(benchmark::State& state) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  Env env = sizes_for(design, state.range(0));
  env["col"] = Rational(1);
  env["row"] = Rational(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(prog.repeater.first.select(env)->evaluate(env));
    benchmark::DoNotOptimize(prog.repeater.last.select(env)->evaluate(env));
  }
}
BENCHMARK(BM_PerProcessScheme)->Arg(8)->Arg(24);

void BM_PerProcessRuntimeGen(benchmark::State& state) {
  static const Design design = matmul_design2();
  Env sizes = sizes_for(design, state.range(0));
  for (auto _ : state) {
    EnumerationOracle oracle(design.nest, design.spec, sizes);
    benchmark::DoNotOptimize(oracle.chord_at(IntVec{1, 0}));
  }
}
BENCHMARK(BM_PerProcessRuntimeGen)->Arg(8)->Arg(24);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
