// Experiment X-D1 / X-D2 (EXPERIMENTS.md): regenerate the two Appendix-D
// polynomial-product programs and execute them over a size sweep. The
// series of interest: processes (n+1 vs 2n+1), logical makespan against
// the synchronous step count 3n+1, and message volume (D.2's soak/drain
// halves the per-process statement count but doubles the array).
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

void BM_PolyprodD1(benchmark::State& state) {
  static const Design design = polyprod_design1();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_PolyprodD1)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PolyprodD2(benchmark::State& state) {
  static const Design design = polyprod_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_PolyprodD2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
