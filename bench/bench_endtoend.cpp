// Experiment X-RUN (EXPERIMENTS.md): the Sect.-8 claim that the generated
// programs execute correctly on parallel machines, reproduced on the
// simulator substrate for every catalog design; throughput of the whole
// compile -> instantiate -> execute -> verify pipeline.
#include "analysis/cost.hpp"
#include "bench_util.hpp"
#include "fuzz/fuzz.hpp"
#include "runtime/plan_template.hpp"
#include "systolic/enumerate.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker_pool.hpp"
#include "service/executor.hpp"

namespace systolize::bench {
namespace {

void endtoend(benchmark::State& state, const std::string& name, Int n) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, n);
  PlanCache cache;
  InstantiateOptions options;
  options.plan_cache = &cache;
  bool verified = false;
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    IndexedStore expected = store;
    run_sequential(design.nest, sizes, expected);
    last = execute(prog, design.nest, sizes, store, options);
    verified = true;
    for (const Stream& s : design.nest.streams()) {
      if (store.elements(s.name()) != expected.elements(s.name())) {
        verified = false;
      }
    }
    benchmark::DoNotOptimize(store);
  }
  if (!verified) state.SkipWithError("result mismatch against sequential");
  state.counters["n"] = static_cast<double>(n);
  state.counters["verified"] = verified ? 1.0 : 0.0;
  state.counters["processes"] = static_cast<double>(last.process_count);
  state.counters["makespan"] = static_cast<double>(last.makespan);
}

void BM_EndToEnd_Polyprod1(benchmark::State& s) { endtoend(s, "polyprod1", 16); }
void BM_EndToEnd_Polyprod2(benchmark::State& s) { endtoend(s, "polyprod2", 16); }
void BM_EndToEnd_Matmul1(benchmark::State& s) { endtoend(s, "matmul1", 6); }
void BM_EndToEnd_Matmul2(benchmark::State& s) { endtoend(s, "matmul2", 6); }
void BM_EndToEnd_Matmul3(benchmark::State& s) { endtoend(s, "matmul3", 6); }
void BM_EndToEnd_Convolution(benchmark::State& s) {
  endtoend(s, "convolution", 16);
}
void BM_EndToEnd_Correlation(benchmark::State& s) {
  endtoend(s, "correlation", 16);
}

BENCHMARK(BM_EndToEnd_Polyprod1);
BENCHMARK(BM_EndToEnd_Polyprod2);
BENCHMARK(BM_EndToEnd_Matmul1);
BENCHMARK(BM_EndToEnd_Matmul2);
BENCHMARK(BM_EndToEnd_Matmul3);
BENCHMARK(BM_EndToEnd_Convolution);
BENCHMARK(BM_EndToEnd_Correlation);

// ---------------------------------------------------------------------
// Native bytecode backend (docs/performance.md "Native backend &
// batching"): the same network, bit-identical results, no coroutines.
// BM_BytecodeVsInterp_* isolates the engine swap at batch 1;
// BM_BatchSweep measures SoA multi-instance batching (one schedule walk
// for N instances) against BM_BatchSweep_Interp's sequential
// run-them-one-by-one baseline — the per-instance gap at batch 8/64 is
// the headline number.

IndexedStore seeded_lane(const Design& design, const Env& sizes, Int b) {
  return make_initial_store(
      design.nest, sizes, [b](const std::string& var, const IntVec& p) {
        Value h = 1099511628211LL * (var.empty() ? 7 : var[0]);
        for (std::size_t i = 0; i < p.dim(); ++i) h = h * 31 + p[i];
        return (h + 13 * b) % 17 - 8;
      });
}

void bytecode_vs_interp(benchmark::State& state, Backend backend) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 6);
  PlanCache cache;
  InstantiateOptions options;
  options.plan_cache = &cache;
  options.backend = backend;
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    last = execute(prog, design.nest, sizes, store, options);
    benchmark::DoNotOptimize(store);
  }
  state.counters["makespan"] = static_cast<double>(last.makespan);
}

void BM_BytecodeVsInterp_Interp(benchmark::State& s) {
  bytecode_vs_interp(s, Backend::Interp);
}
void BM_BytecodeVsInterp_Bytecode(benchmark::State& s) {
  bytecode_vs_interp(s, Backend::Bytecode);
}
BENCHMARK(BM_BytecodeVsInterp_Interp);
BENCHMARK(BM_BytecodeVsInterp_Bytecode);

void batch_sweep(benchmark::State& state, Backend backend) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, 6);
  PlanCache cache;
  InstantiateOptions options;
  options.plan_cache = &cache;
  options.backend = backend;
  for (auto _ : state) {
    std::vector<IndexedStore> stores;
    stores.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      stores.push_back(seeded_lane(design, sizes, static_cast<Int>(b)));
    }
    RunMetrics m = execute_batch(prog, design.nest, sizes, stores.data(),
                                 batch, options);
    benchmark::DoNotOptimize(stores);
    benchmark::DoNotOptimize(m);
  }
  // items/s is instances per second — the cross-batch comparable rate.
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(batch));
}

void BM_BatchSweep(benchmark::State& s) {
  batch_sweep(s, Backend::Bytecode);
}
void BM_BatchSweep_Interp(benchmark::State& s) {
  batch_sweep(s, Backend::Interp);
}
BENCHMARK(BM_BatchSweep)->Arg(1)->Arg(8)->Arg(64);
BENCHMARK(BM_BatchSweep_Interp)->Arg(1)->Arg(8)->Arg(64);

// ---------------------------------------------------------------------
// Differential fuzzing throughput (PR10): samples generated AND driven
// through the whole oracle — parse, compile, static verify, then every
// backend (interp, instrumented, threads=2, bytecode solo + batch=3)
// cross-checked against the sequential baseline. items/s is oracle
// verdicts per second; any disagreement fails the bench outright.

void BM_FuzzThroughput(benchmark::State& state) {
  fuzz::GeneratorOptions gen;
  fuzz::OracleOptions oracle;
  std::size_t index = 0;
  std::size_t disagreements = 0;
  for (auto _ : state) {
    const fuzz::FuzzSample sample = fuzz::generate_sample(99, index++, gen);
    const fuzz::OracleResult verdict = fuzz::classify(sample, oracle);
    if (fuzz::is_disagreement(verdict.outcome)) ++disagreements;
    benchmark::DoNotOptimize(verdict);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  if (disagreements != 0) {
    state.SkipWithError("fuzz oracle found a disagreement");
  }
}
BENCHMARK(BM_FuzzThroughput);

// ---------------------------------------------------------------------
// Plan-construction microbenchmarks (PR4): the legacy one-shot symbolic
// path (build_plan) vs the split pipeline (compile_template once, then
// integer-only expand_template per size). BM_PlanExpand_* against
// BM_PlanBuild_* at the same n is the headline per-size speedup;
// BM_PlanCompileExpand_* shows the one-off template cost is amortizable.

void plan_build(benchmark::State& state, const std::string& name) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, state.range(0));
  std::size_t procs = 0;
  for (auto _ : state) {
    auto plan = build_plan(prog, design.nest, sizes, PlanShape{});
    procs = plan->procs.size();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["processes"] = static_cast<double>(procs);
}

void plan_expand(benchmark::State& state, const std::string& name) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, state.range(0));
  auto tmpl = compile_template(prog, design.nest, PlanShape{});
  std::size_t procs = 0;
  for (auto _ : state) {
    auto plan = expand_template(*tmpl, sizes);
    procs = plan->procs.size();
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["processes"] = static_cast<double>(procs);
  state.counters["template_bytes"] = static_cast<double>(tmpl->memory_bytes());
}

void plan_compile_expand(benchmark::State& state, const std::string& name) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, state.range(0));
  for (auto _ : state) {
    auto tmpl = compile_template(prog, design.nest, PlanShape{});
    auto plan = expand_template(*tmpl, sizes);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
}

void BM_PlanBuild_Polyprod1(benchmark::State& s) { plan_build(s, "polyprod1"); }
void BM_PlanBuild_Matmul2(benchmark::State& s) { plan_build(s, "matmul2"); }
void BM_PlanBuild_Convolution(benchmark::State& s) {
  plan_build(s, "convolution");
}
void BM_PlanExpand_Polyprod1(benchmark::State& s) {
  plan_expand(s, "polyprod1");
}
void BM_PlanExpand_Matmul2(benchmark::State& s) { plan_expand(s, "matmul2"); }
void BM_PlanExpand_Convolution(benchmark::State& s) {
  plan_expand(s, "convolution");
}
void BM_PlanCompileExpand_Polyprod1(benchmark::State& s) {
  plan_compile_expand(s, "polyprod1");
}
void BM_PlanCompileExpand_Matmul2(benchmark::State& s) {
  plan_compile_expand(s, "matmul2");
}

BENCHMARK(BM_PlanBuild_Polyprod1)->Arg(16)->Arg(64);
BENCHMARK(BM_PlanBuild_Matmul2)->Arg(6)->Arg(10);
BENCHMARK(BM_PlanBuild_Convolution)->Arg(16);
BENCHMARK(BM_PlanExpand_Polyprod1)->Arg(16)->Arg(64);
BENCHMARK(BM_PlanExpand_Matmul2)->Arg(6)->Arg(10);
BENCHMARK(BM_PlanExpand_Convolution)->Arg(16);
BENCHMARK(BM_PlanCompileExpand_Polyprod1)->Arg(16);
BENCHMARK(BM_PlanCompileExpand_Matmul2)->Arg(6);

/// Cold-size serving loop: every request arrives with a size the plan
/// cache has never kept (a 1-byte budget evicts all but the newest
/// entry, and the sweep rotates through more sizes than that), so each
/// lookup pays the full per-size construction cost of its path —
/// template expansion here, the symbolic derivation in the _Legacy
/// variant. This is the ISSUE's ≥10x target pair.
void cold_size_sweep(benchmark::State& state, const std::string& name,
                     bool use_template) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  std::vector<Env> sweep;
  const Int base = state.range(0);
  for (Int n = base; n < base + 12; ++n) {
    sweep.push_back(sizes_for(design, n));
  }
  PlanCache cache(1);  // evicts every plan except the newest
  std::size_t i = 0;
  for (auto _ : state) {
    const Env& sizes = sweep[i++ % sweep.size()];
    if (use_template) {
      auto plan = cache.lookup_or_build(prog, design.nest, sizes, PlanShape{});
      benchmark::DoNotOptimize(plan);
    } else {
      auto plan = build_plan(prog, design.nest, sizes, PlanShape{});
      benchmark::DoNotOptimize(plan);
    }
  }
  state.counters["n"] = static_cast<double>(base);
  state.counters["template_compiles"] =
      static_cast<double>(cache.template_compiles());
  state.counters["evictions"] = static_cast<double>(cache.evictions());
}

void BM_ColdSizeSweep_Polyprod1(benchmark::State& s) {
  cold_size_sweep(s, "polyprod1", true);
}
void BM_ColdSizeSweep_Legacy_Polyprod1(benchmark::State& s) {
  cold_size_sweep(s, "polyprod1", false);
}
void BM_ColdSizeSweep_Matmul2(benchmark::State& s) {
  cold_size_sweep(s, "matmul2", true);
}
void BM_ColdSizeSweep_Legacy_Matmul2(benchmark::State& s) {
  cold_size_sweep(s, "matmul2", false);
}

BENCHMARK(BM_ColdSizeSweep_Polyprod1)->Arg(16);
BENCHMARK(BM_ColdSizeSweep_Legacy_Polyprod1)->Arg(16);
BENCHMARK(BM_ColdSizeSweep_Matmul2)->Arg(6);
BENCHMARK(BM_ColdSizeSweep_Legacy_Matmul2)->Arg(6);

/// Raw substrate throughput: rendezvous transfers per second through a
/// long relay pipeline (sizes the simulator itself, independent of any
/// design).
void BM_SubstrateRelayChain(benchmark::State& state) {
  const Int stages = state.range(0);
  const Value values = 64;
  Int transfers = 0;
  for (auto _ : state) {
    Scheduler sched;
    std::vector<Channel*> chans;
    for (Int i = 0; i <= stages; ++i) {
      chans.push_back(&sched.make_channel("c" + std::to_string(i)));
    }
    struct Bodies {
      static Task feed(Ctx ctx, Channel* out, Value count) {
        for (Value v = 0; v < count; ++v) co_await ctx.send(*out, v);
      }
      static Task relay(Ctx ctx, Channel* in, Channel* out, Value count) {
        for (Value v = 0; v < count; ++v) {
          Value x = 0;
          co_await ctx.recv(*in, x);
          co_await ctx.send(*out, x);
        }
      }
      static Task sink(Ctx ctx, Channel* in, Value count) {
        for (Value v = 0; v < count; ++v) {
          Value x = 0;
          co_await ctx.recv(*in, x);
          benchmark::DoNotOptimize(x);
        }
      }
    };
    Channel* head = chans.front();
    sched.spawn("feed", [head](Ctx c) { return Bodies::feed(c, head, values); });
    for (Int i = 0; i < stages; ++i) {
      Channel* in = chans[i];
      Channel* out = chans[i + 1];
      sched.spawn("relay" + std::to_string(i), [in, out](Ctx c) {
        return Bodies::relay(c, in, out, values);
      });
    }
    Channel* tail = chans.back();
    sched.spawn("sink", [tail](Ctx c) { return Bodies::sink(c, tail, values); });
    sched.run();
    transfers = sched.total_transfers();
  }
  state.counters["transfers_per_run"] = static_cast<double>(transfers);
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_SubstrateRelayChain)->Arg(16)->Arg(64)->Arg(256);

/// Parallel substrate scaling on a skewed wavefront: matmul2's triangular
/// process space ramps from one ready process to a wide diagonal and back
/// down, so static partitions starve while work stealing rebalances.
/// Args are {n, threads}; threads=0 is the sequential fast-path baseline.
/// Plan and pool are amortized across iterations (the serve model).
void BM_SubstrateSkewedWavefront(benchmark::State& state) {
  const Int n = state.range(0);
  const auto threads = static_cast<unsigned>(state.range(1));
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, n);
  PlanCache cache;
  WorkerPool pool;
  InstantiateOptions options;
  options.plan_cache = &cache;
  options.threads = threads;
  options.worker_pool = &pool;
  IndexedStore base = seeded_store(design, sizes);
  RunMetrics last{};
  Int steals = 0;
  for (auto _ : state) {
    IndexedStore store = base;
    last = execute(prog, design.nest, sizes, store, options);
    steals = 0;
    for (const WorkerCounters& w : last.workers) steals += w.steals;
    benchmark::DoNotOptimize(store);
  }
  state.counters["processes"] = static_cast<double>(last.process_count);
  state.counters["makespan"] = static_cast<double>(last.makespan);
  state.counters["steals"] = static_cast<double>(steals);
  state.SetItemsProcessed(state.iterations() * last.total_transfers);
}
BENCHMARK(BM_SubstrateSkewedWavefront)
    ->Args({8, 0})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({8, 8})
    ->Args({12, 0})
    ->Args({12, 4})
    ->Args({12, 8})
    ->UseRealTime();

// ------------------------------------------------------------ service path
// What a daemon buys over one-shot invocation: a warm serve request rides
// the shared compile cache (stable program generation) and plan cache
// (template + plan hits), while a cold request — the CLI model — pays
// compile + template + expansion every time. Same request, same engine;
// the delta is the daemon's amortization. Recorded in BENCH_runtime.json
// via `tools/bench.sh PR6-serve --benchmark_filter=BM_Serve`.
void BM_ServeWarmRequest(benchmark::State& state) {
  service::ExecutorConfig cfg;
  cfg.default_wall_timeout_ms = 0;  // no deadline thread in the hot loop
  service::Executor executor(cfg);
  service::Request req;
  req.op = "run";
  req.design = "matmul2";
  req.n = state.range(0);
  (void)executor.handle(req);  // prime compile + template + plan caches
  for (auto _ : state) {
    service::Response r = executor.handle(req);
    if (r.status != "ok") state.SkipWithError(r.message.c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["plan_hits"] =
      static_cast<double>(executor.plan_cache().hits());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeWarmRequest)->Arg(4)->Arg(6);

void BM_ServeColdRequest(benchmark::State& state) {
  service::Request req;
  req.op = "run";
  req.design = "matmul2";
  req.n = state.range(0);
  for (auto _ : state) {
    // A fresh executor per request: every cache is cold, exactly the
    // work a one-shot `systolize run` does (minus process startup).
    service::ExecutorConfig cfg;
    cfg.default_wall_timeout_ms = 0;
    service::Executor executor(cfg);
    service::Response r = executor.handle(req);
    if (r.status != "ok") state.SkipWithError(r.message.c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeColdRequest)->Arg(4)->Arg(6);

// -------------------------------------------------------- static analysis
// The PR8 cost model and design-space search. BM_AnalyzeCost is the cold
// `systolize analyze` path (formulas + plan interning + metrics, zero
// scheduler rounds); BM_ExploreMatmul2 is the `--same-projection` search
// the CI smoke runs — enumerate, prune, compile, verify and rank every
// candidate sharing matmul2's projection. Recorded in BENCH_runtime.json
// as 'PR8-explore'.
void BM_AnalyzeCost(benchmark::State& state) {
  Design design = design_by_name("matmul2");
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, state.range(0));
  Int processes = 0;
  for (auto _ : state) {
    CostReport report = analyze_cost(prog, design.nest, {sizes});
    processes = report.at.back().metrics.processes;
    benchmark::DoNotOptimize(report);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["processes"] = static_cast<double>(processes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnalyzeCost)->Arg(6)->Arg(10);

void BM_ExploreMatmul2(benchmark::State& state) {
  Design design = design_by_name("matmul2");
  EnumerateOptions options;
  options.same_projection = true;
  Env sizes = sizes_for(design, state.range(0));
  options.sizes = {sizes};
  std::size_t survivors = 0;
  bool seed_first = true;
  for (auto _ : state) {
    ExploreResult result =
        enumerate_designs(design.nest, &design.spec, options);
    survivors = result.stats.survivors;
    seed_first = !result.ranked.empty() && result.ranked.front().matches_seed;
    benchmark::DoNotOptimize(result);
  }
  if (!seed_first) {
    state.SkipWithError("seed design did not rank first in its own space");
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["survivors"] = static_cast<double>(survivors);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExploreMatmul2)->Arg(4);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
