// Experiment X-RUN (EXPERIMENTS.md): the Sect.-8 claim that the generated
// programs execute correctly on parallel machines, reproduced on the
// simulator substrate for every catalog design; throughput of the whole
// compile -> instantiate -> execute -> verify pipeline.
#include "bench_util.hpp"
#include "runtime/scheduler.hpp"

namespace systolize::bench {
namespace {

void endtoend(benchmark::State& state, const std::string& name, Int n) {
  Design design = design_by_name(name);
  CompiledProgram prog = compile(design.nest, design.spec);
  Env sizes = sizes_for(design, n);
  PlanCache cache;
  InstantiateOptions options;
  options.plan_cache = &cache;
  bool verified = false;
  RunMetrics last{};
  for (auto _ : state) {
    IndexedStore store = seeded_store(design, sizes);
    IndexedStore expected = store;
    run_sequential(design.nest, sizes, expected);
    last = execute(prog, design.nest, sizes, store, options);
    verified = true;
    for (const Stream& s : design.nest.streams()) {
      if (store.elements(s.name()) != expected.elements(s.name())) {
        verified = false;
      }
    }
    benchmark::DoNotOptimize(store);
  }
  if (!verified) state.SkipWithError("result mismatch against sequential");
  state.counters["n"] = static_cast<double>(n);
  state.counters["verified"] = verified ? 1.0 : 0.0;
  state.counters["processes"] = static_cast<double>(last.process_count);
  state.counters["makespan"] = static_cast<double>(last.makespan);
}

void BM_EndToEnd_Polyprod1(benchmark::State& s) { endtoend(s, "polyprod1", 16); }
void BM_EndToEnd_Polyprod2(benchmark::State& s) { endtoend(s, "polyprod2", 16); }
void BM_EndToEnd_Matmul1(benchmark::State& s) { endtoend(s, "matmul1", 6); }
void BM_EndToEnd_Matmul2(benchmark::State& s) { endtoend(s, "matmul2", 6); }
void BM_EndToEnd_Matmul3(benchmark::State& s) { endtoend(s, "matmul3", 6); }
void BM_EndToEnd_Convolution(benchmark::State& s) {
  endtoend(s, "convolution", 16);
}
void BM_EndToEnd_Correlation(benchmark::State& s) {
  endtoend(s, "correlation", 16);
}

BENCHMARK(BM_EndToEnd_Polyprod1);
BENCHMARK(BM_EndToEnd_Polyprod2);
BENCHMARK(BM_EndToEnd_Matmul1);
BENCHMARK(BM_EndToEnd_Matmul2);
BENCHMARK(BM_EndToEnd_Matmul3);
BENCHMARK(BM_EndToEnd_Convolution);
BENCHMARK(BM_EndToEnd_Correlation);

/// Raw substrate throughput: rendezvous transfers per second through a
/// long relay pipeline (sizes the simulator itself, independent of any
/// design).
void BM_SubstrateRelayChain(benchmark::State& state) {
  const Int stages = state.range(0);
  const Value values = 64;
  Int transfers = 0;
  for (auto _ : state) {
    Scheduler sched;
    std::vector<Channel*> chans;
    for (Int i = 0; i <= stages; ++i) {
      chans.push_back(&sched.make_channel("c" + std::to_string(i)));
    }
    struct Bodies {
      static Task feed(Ctx ctx, Channel* out, Value count) {
        for (Value v = 0; v < count; ++v) co_await ctx.send(*out, v);
      }
      static Task relay(Ctx ctx, Channel* in, Channel* out, Value count) {
        for (Value v = 0; v < count; ++v) {
          Value x = 0;
          co_await ctx.recv(*in, x);
          co_await ctx.send(*out, x);
        }
      }
      static Task sink(Ctx ctx, Channel* in, Value count) {
        for (Value v = 0; v < count; ++v) {
          Value x = 0;
          co_await ctx.recv(*in, x);
          benchmark::DoNotOptimize(x);
        }
      }
    };
    Channel* head = chans.front();
    sched.spawn("feed", [head](Ctx c) { return Bodies::feed(c, head, values); });
    for (Int i = 0; i < stages; ++i) {
      Channel* in = chans[i];
      Channel* out = chans[i + 1];
      sched.spawn("relay" + std::to_string(i), [in, out](Ctx c) {
        return Bodies::relay(c, in, out, values);
      });
    }
    Channel* tail = chans.back();
    sched.spawn("sink", [tail](Ctx c) { return Bodies::sink(c, tail, values); });
    sched.run();
    transfers = sched.total_transfers();
  }
  state.counters["transfers_per_run"] = static_cast<double>(transfers);
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_SubstrateRelayChain)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
