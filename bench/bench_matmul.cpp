// Experiment X-E1 / X-E2 (EXPERIMENTS.md): the two Appendix-E matrix
// product designs (plus the catalog's third place function). Key shapes:
// E.1 uses (n+1)^2 computation processes and a stationary c; E.2 — the
// Kung-Leiserson array — spreads over (2n+1)^2 points, a strict superset
// of CS whose corners are pure buffers, yet finishes in fewer synchronous
// steps per statement executed.
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

void BM_MatmulE1(benchmark::State& state) {
  static const Design design = matmul_design1();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_MatmulE1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_MatmulE2_KungLeiserson(benchmark::State& state) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_MatmulE2_KungLeiserson)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_MatmulE3_AStationary(benchmark::State& state) {
  static const Design design = matmul_design3();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_MatmulE3_AStationary)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
