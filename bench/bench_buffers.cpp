// Experiment X-BUF (EXPERIMENTS.md): buffer realizations, Sect. 7.6.
//
// Stream b of the polynomial product (flow 1/2) needs one interposed
// buffer per hop; the correlation design's stream c (flow 1/3) needs two.
// The paper remarks the buffers "may be incorporated into the computation
// processes in a later compilation step" — the merged variant realizes
// them as channel slack instead of separate processes. The ablation
// compares process counts, messages and makespan for the two realizations
// (results are verified identical by the integration tests).
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

void BM_SeparateBufferProcesses_Polyprod(benchmark::State& state) {
  static const Design design = polyprod_design1();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_SeparateBufferProcesses_Polyprod)->Arg(8)->Arg(16)->Arg(32);

void BM_MergedBuffers_Polyprod(benchmark::State& state) {
  static const Design design = polyprod_design1();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  InstantiateOptions opt;
  opt.merge_internal_buffers = true;
  run_and_report(state, design, prog, state.range(0), opt);
}
BENCHMARK(BM_MergedBuffers_Polyprod)->Arg(8)->Arg(16)->Arg(32);

void BM_SeparateBufferProcesses_Correlation(benchmark::State& state) {
  static const Design design = correlation_design();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_SeparateBufferProcesses_Correlation)->Arg(8)->Arg(16)->Arg(32);

void BM_MergedBuffers_Correlation(benchmark::State& state) {
  static const Design design = correlation_design();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  InstantiateOptions opt;
  opt.merge_internal_buffers = true;
  run_and_report(state, design, prog, state.range(0), opt);
}
BENCHMARK(BM_MergedBuffers_Correlation)->Arg(8)->Arg(16)->Arg(32);

/// External buffers (PS \ CS) cannot be merged away: the Kung-Leiserson
/// array's corner regions as a function of n.
void BM_ExternalBuffers_KungLeiserson(benchmark::State& state) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_ExternalBuffers_KungLeiserson)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
