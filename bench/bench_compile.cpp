// Experiment X-COMP (EXPERIMENTS.md): cost of the compilation scheme
// itself. The paper's central point against run-time generation (Sect. 8)
// is that the symbolic derivation runs once and is independent of the
// problem size — the `n` argument below changes nothing for compile()
// while instantiation cost naturally grows with the array.
#include "bench_util.hpp"

namespace systolize::bench {
namespace {

void BM_CompileDesign(benchmark::State& state,
                      const std::string& design_name) {
  Design design = design_by_name(design_name);
  for (auto _ : state) {
    CompiledProgram prog = compile(design.nest, design.spec);
    benchmark::DoNotOptimize(prog);
  }
  state.counters["first_clauses"] = static_cast<double>(
      compile(design.nest, design.spec).repeater.first.size());
}

void BM_CompilePolyprod1(benchmark::State& state) {
  BM_CompileDesign(state, "polyprod1");
}
void BM_CompilePolyprod2(benchmark::State& state) {
  BM_CompileDesign(state, "polyprod2");
}
void BM_CompileMatmul1(benchmark::State& state) {
  BM_CompileDesign(state, "matmul1");
}
void BM_CompileMatmul2(benchmark::State& state) {
  BM_CompileDesign(state, "matmul2");
}
void BM_CompileConvolution(benchmark::State& state) {
  BM_CompileDesign(state, "convolution");
}
void BM_CompileCorrelation(benchmark::State& state) {
  BM_CompileDesign(state, "correlation");
}

BENCHMARK(BM_CompilePolyprod1);
BENCHMARK(BM_CompilePolyprod2);
BENCHMARK(BM_CompileMatmul1);
BENCHMARK(BM_CompileMatmul2);
BENCHMARK(BM_CompileConvolution);
BENCHMARK(BM_CompileCorrelation);

/// Compilation is problem-size independent: the symbolic result is the
/// same object regardless of n, so the only size-dependent stage is
/// instantiation. This benchmark times instantiate+run separately so the
/// two stages can be compared.
void BM_InstantiateMatmul2(benchmark::State& state) {
  static const Design design = matmul_design2();
  static const CompiledProgram prog = compile(design.nest, design.spec);
  run_and_report(state, design, prog, state.range(0));
}
BENCHMARK(BM_InstantiateMatmul2)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace systolize::bench

BENCHMARK_MAIN();
