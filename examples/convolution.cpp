// FIR convolution on the systolic substrate, plus the three concrete
// renderings of the generated abstract program (paper notation, occam-like
// and C-like — the "translatable to any distributed language" claim of
// Sect. 1 exercised mechanically instead of by hand translation).
#include <iostream>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

int main() {
  Design design = convolution_design();
  CompiledProgram prog = compile(design.nest, design.spec);
  std::cout << "design: " << design.description << "\n";
  std::cout << "flows: w=" << prog.stream_plan("w").motion.flow
            << " x=" << prog.stream_plan("x").motion.flow
            << " y=" << prog.stream_plan("y").motion.flow
            << " (stationary, loading vector "
            << prog.stream_plan("y").motion.direction << ")\n\n";

  auto tree = ast::build_ast(prog, design.nest);
  std::cout << "---------- paper notation ----------\n"
            << ast::to_paper_notation(*tree) << "\n";
  std::cout << "---------- occam rendering ----------\n"
            << ast::to_occam(*tree) << "\n";
  std::cout << "---------- C rendering ----------\n"
            << ast::to_c(*tree) << "\n";

  // Smooth a step signal with a 4-tap box filter: n = 11 outputs, m = 3.
  Env sizes{{"n", Rational(11)}, {"m", Rational(3)}};
  IndexedStore store;
  store.fill(design.nest.stream("w"), sizes, [](const IntVec&) { return 1; });
  store.fill(design.nest.stream("x"), sizes,
             [](const IntVec& p) { return p[0] >= 7 ? 4 : 0; });
  store.fill(design.nest.stream("y"), sizes, [](const IntVec&) { return 0; });
  IndexedStore check = store;
  run_sequential(design.nest, sizes, check);

  RunMetrics metrics = execute(prog, design.nest, sizes, store);
  std::cout << "run: " << metrics.to_string() << "\n";
  std::cout << "filtered signal:";
  for (const auto& [idx, v] : store.elements("y")) std::cout << ' ' << v;
  std::cout << "\n";
  bool ok = store.elements("y") == check.elements("y");
  std::cout << (ok ? "matches sequential ground truth\n"
                   : "MISMATCH against sequential ground truth\n");
  return ok ? 0 : 1;
}
