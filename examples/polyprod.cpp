// Polynomial product, both appendix designs side by side: the simple
// place function (D.1, n+1 processes) against the non-simple one
// (D.2, 2n+1 processes), with the generated programs and execution
// metrics for each.
#include <iomanip>
#include <iostream>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

namespace {

RunMetrics run_design(const Design& design, const CompiledProgram& prog,
                      Int n) {
  Env sizes{{"n", Rational(n)}};
  IndexedStore store = make_initial_store(
      design.nest, sizes, [](const std::string& var, const IntVec& p) {
        return static_cast<Value>((var[0] - 'a' + 2) * (p[0] + 1) % 13);
      });
  IndexedStore check = store;
  run_sequential(design.nest, sizes, check);
  RunMetrics metrics = execute(prog, design.nest, sizes, store);
  if (store.elements("c") != check.elements("c")) {
    std::cerr << "MISMATCH for n=" << n << "\n";
    std::exit(1);
  }
  return metrics;
}

}  // namespace

int main() {
  Design d1 = polyprod_design1();
  Design d2 = polyprod_design2();
  CompiledProgram p1 = compile(d1.nest, d1.spec);
  CompiledProgram p2 = compile(d2.nest, d2.spec);

  std::cout << "=== " << d1.description << " ===\n\n";
  std::cout << ast::to_paper_notation(*ast::build_ast(p1, d1.nest)) << "\n";
  std::cout << "=== " << d2.description << " ===\n\n";
  std::cout << ast::to_paper_notation(*ast::build_ast(p2, d2.nest)) << "\n";

  std::cout << "=== execution comparison (both verified against the "
               "sequential source program) ===\n";
  std::cout << std::setw(5) << "n" << std::setw(12) << "D1 procs"
            << std::setw(12) << "D1 span" << std::setw(12) << "D2 procs"
            << std::setw(12) << "D2 span" << "\n";
  for (Int n : {2, 4, 8, 16}) {
    RunMetrics m1 = run_design(d1, p1, n);
    RunMetrics m2 = run_design(d2, p2, n);
    std::cout << std::setw(5) << n << std::setw(12) << m1.process_count
              << std::setw(12) << m1.makespan << std::setw(12)
              << m2.process_count << std::setw(12) << m2.makespan << "\n";
  }
  std::cout << "\nD.2 uses ~2x the processes of D.1 (2n+1 vs n+1) but every\n"
               "process executes at most n+1 statements instead of exactly\n"
               "n+1 — the classic space/utilization trade-off between the\n"
               "two place functions.\n";
  return 0;
}
