// Matrix-matrix multiplication: the simple design E.1 against the
// Kung-Leiserson hexagonal design E.2 (place.(i,j,k) = (i-k,j-k)), whose
// process space strictly contains the computation space — external buffer
// processes appear, exactly as in Appendix E.2.7.
#include <iomanip>
#include <iostream>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

namespace {

Value a_init(const IntVec& p) { return p[0] + 2 * p[1] + 1; }
Value b_init(const IntVec& p) { return (p[0] + 1) * (p[1] + 2) % 7 - 3; }

RunMetrics run_matmul(const Design& design, const CompiledProgram& prog,
                      Int n) {
  Env sizes{{"n", Rational(n)}};
  IndexedStore store;
  store.fill(design.nest.stream("a"), sizes, a_init);
  store.fill(design.nest.stream("b"), sizes, b_init);
  store.fill(design.nest.stream("c"), sizes, [](const IntVec&) { return 0; });
  IndexedStore check = store;
  run_sequential(design.nest, sizes, check);
  RunMetrics metrics = execute(prog, design.nest, sizes, store);
  if (store.elements("c") != check.elements("c")) {
    std::cerr << "MISMATCH for n=" << n << "\n";
    std::exit(1);
  }
  return metrics;
}

}  // namespace

int main() {
  Design e1 = matmul_design1();
  Design e2 = matmul_design2();
  CompiledProgram p1 = compile(e1.nest, e1.spec);
  CompiledProgram p2 = compile(e2.nest, e2.spec);

  std::cout << "=== " << e2.description << " ===\n\n";
  std::cout << "first (three faces, piecewise):\n"
            << p2.repeater.first.to_string(
                   [](const AffinePoint& p) { return p.to_string(); })
            << "\n\n";
  std::cout << ast::to_paper_notation(*ast::build_ast(p2, e2.nest)) << "\n";

  std::cout << "=== execution comparison ===\n";
  std::cout << std::setw(4) << "n" << std::setw(12) << "E1 procs"
            << std::setw(10) << "E1 span" << std::setw(12) << "E2 procs"
            << std::setw(10) << "E2 span" << std::setw(12) << "E2 bufs"
            << "\n";
  for (Int n : {1, 2, 3, 4, 6}) {
    RunMetrics m1 = run_matmul(e1, p1, n);
    RunMetrics m2 = run_matmul(e2, p2, n);
    std::cout << std::setw(4) << n << std::setw(12) << m1.process_count
              << std::setw(10) << m1.makespan << std::setw(12)
              << m2.process_count << std::setw(10) << m2.makespan
              << std::setw(12) << m2.buffer_processes << "\n";
  }
  std::cout << "\nE.1 holds c stationary on an (n+1)^2 grid; E.2 keeps all\n"
               "three streams moving on a (2n+1)^2 grid whose corners\n"
               "(|col-row| > n) are pure buffer processes passing a and b\n"
               "and nothing of c — compare Sect. E.2.6.\n";
  return 0;
}
