// Visualize the systolic wavefront: for the Kung-Leiserson matrix-product
// array, record the logical time of every basic statement and draw, per
// process of the 2-D array, the time of its FIRST statement. The times
// form diagonal bands sweeping the array — the asynchronous execution
// reproduces the synchronous wavefront (cf. the wave-front arrays remark
// in Sect. 4).
#include <iomanip>
#include <iostream>
#include <map>

#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

int main() {
  Design design = matmul_design2();
  CompiledProgram prog = compile(design.nest, design.spec);
  const Int n = 4;
  Env sizes{{"n", Rational(n)}};

  Trace trace;
  InstantiateOptions opt;
  opt.trace = &trace;
  IndexedStore store = make_initial_store(
      design.nest, sizes,
      [](const std::string&, const IntVec& p) { return p[0] + 1; });
  RunMetrics metrics = execute(prog, design.nest, sizes, store, opt);

  std::map<IntVec, Int, IntVecLess> first_time;
  std::map<IntVec, Int, IntVecLess> last_time;
  for (const StatementEvent& ev : trace.statements) {
    auto [it, inserted] = first_time.emplace(ev.process, ev.time);
    if (!inserted) it->second = std::min(it->second, ev.time);
    auto [jt, fresh] = last_time.emplace(ev.process, ev.time);
    if (!fresh) jt->second = std::max(jt->second, ev.time);
  }

  std::cout << design.description << ", n = " << n << "\n";
  std::cout << metrics.to_string() << "\n\n";
  std::cout << "logical time of each process's first statement\n";
  std::cout << "('..' marks buffer-only points outside CS):\n\n     ";
  for (Int col = -n; col <= n; ++col) {
    std::cout << std::setw(4) << col;
  }
  std::cout << "  <- col\n";
  for (Int row = n; row >= -n; --row) {
    std::cout << std::setw(4) << row << ":";
    for (Int col = -n; col <= n; ++col) {
      auto it = first_time.find(IntVec{col, row});
      if (it == first_time.end()) {
        std::cout << "   .";
      } else {
        std::cout << std::setw(4) << it->second;
      }
    }
    std::cout << "\n";
  }

  std::cout << "\nlogical time of each process's last statement:\n\n";
  for (Int row = n; row >= -n; --row) {
    std::cout << std::setw(4) << row << ":";
    for (Int col = -n; col <= n; ++col) {
      auto it = last_time.find(IntVec{col, row});
      if (it == last_time.end()) {
        std::cout << "   .";
      } else {
        std::cout << std::setw(4) << it->second;
      }
    }
    std::cout << "\n";
  }
  std::cout << "\nThe bands advance along the anti-diagonal: the wavefront\n"
               "of step.(i,j,k) = i+j+k projected by place.(i,j,k) =\n"
               "(i-k, j-k), emerging purely from rendezvous ordering with\n"
               "no global clock.\n";
  return 0;
}
