// Dump the full derivation report — the paper's appendix walk-through,
// regenerated mechanically — for one catalog design (argv[1], default
// matmul2 = the Kung-Leiserson array) or for all designs with "--all".
#include <iostream>

#include "designs/catalog.hpp"
#include "scheme/compiler.hpp"
#include "scheme/report.hpp"

using namespace systolize;

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "matmul2";
  if (which == "--all") {
    for (const Design& d : all_designs()) {
      CompiledProgram prog = compile(d.nest, d.spec);
      std::cout << derivation_report(prog, d.nest, d.spec) << "\n\n";
    }
    return 0;
  }
  Design d = design_by_name(which);
  std::cout << d.description << "\n\n";
  CompiledProgram prog = compile(d.nest, d.spec);
  std::cout << derivation_report(prog, d.nest, d.spec);
  return 0;
}
