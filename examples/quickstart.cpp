// Quickstart: compile the paper's running example (polynomial product,
// Appendix D.1), print the generated abstract program, and execute it on
// the message-passing simulator at a concrete problem size.
#include <iostream>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "designs/catalog.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

int main() {
  // 1. A source program + systolic array from the catalog. The design is
  //    Appendix D.1: polynomial product with place.(i,j) = i.
  Design design = polyprod_design1();
  std::cout << "design: " << design.description << "\n\n";

  // 2. Run the systolizing compilation scheme (problem-size independent).
  CompiledProgram prog = compile(design.nest, design.spec);
  std::cout << "increment = " << prog.repeater.increment << "\n";
  std::cout << "PS = [" << prog.ps.min << " .. " << prog.ps.max << "]\n\n";

  // 3. Render the generated program in the paper's notation.
  auto tree = ast::build_ast(prog, design.nest);
  std::cout << ast::to_paper_notation(*tree) << "\n";

  // 4. Execute at n = 4: multiply (1 + 2x + 3x^2 + 4x^3 + 5x^4) by
  //    (2 + x + x^2 + x^3 + x^4).
  Env sizes{{"n", Rational(4)}};
  IndexedStore store;
  store.fill(design.nest.stream("a"), sizes,
             [](const IntVec& p) { return p[0] + 1; });
  store.fill(design.nest.stream("b"), sizes,
             [](const IntVec& p) { return p[0] == 0 ? 2 : 1; });
  store.fill(design.nest.stream("c"), sizes, [](const IntVec&) { return 0; });

  RunMetrics metrics = execute(prog, design.nest, sizes, store);
  std::cout << "run: " << metrics.to_string() << "\n";
  std::cout << "product coefficients:";
  for (const auto& [idx, v] : store.elements("c")) std::cout << ' ' << v;
  std::cout << "\n";

  // 5. Cross-check against the sequential execution of the source program.
  IndexedStore check;
  check.fill(design.nest.stream("a"), sizes,
             [](const IntVec& p) { return p[0] + 1; });
  check.fill(design.nest.stream("b"), sizes,
             [](const IntVec& p) { return p[0] == 0 ? 2 : 1; });
  check.fill(design.nest.stream("c"), sizes, [](const IntVec&) { return 0; });
  run_sequential(design.nest, sizes, check);
  std::cout << (store.elements("c") == check.elements("c")
                    ? "matches sequential ground truth\n"
                    : "MISMATCH against sequential ground truth\n");
  return store.elements("c") == check.elements("c") ? 0 : 1;
}
