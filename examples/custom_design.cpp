// Define a brand-new systolic design in the .sa text format, compile it,
// print the generated program, and execute it — no C++ recompilation
// needed for new kernels. Pass a path to your own .sa file as argv[1], or
// run without arguments to use the built-in banded-correlation example.
#include <fstream>
#include <iostream>
#include <sstream>

#include "ast/builder.hpp"
#include "ast/print.hpp"
#include "baseline/sequential.hpp"
#include "frontend/parser.hpp"
#include "runtime/instantiate.hpp"
#include "scheme/compiler.hpp"

using namespace systolize;

namespace {

const char* kDefaultDesign = R"(# Correlation with a stationary reference
# sequence: c[i-j] accumulates a[i]*b[j]; stream c crawls at flow 1/3.
design custom_correlation
sizes n >= 1
loop i = 0 .. n
loop j = 0 .. n
stream a[i]   read   dims [0 .. n]
stream b[j]   read   dims [0 .. n]
stream c[i-j] update dims [0 - n .. n]
body c := c + a * b
step i + 2*j
place (i)
load a = (1)
)";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kDefaultDesign;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  Design design = frontend::parse_design(source);
  std::cout << "parsed: " << design.description << "\n";
  CompiledProgram prog = compile(design.nest, design.spec);

  std::cout << "streams:\n";
  for (const StreamPlan& plan : prog.streams) {
    std::cout << "  " << plan.name << ": flow " << plan.motion.flow
              << (plan.motion.stationary ? " (stationary)" : "")
              << ", increment_s " << plan.io.increment_s << ", "
              << plan.motion.denominator - 1 << " internal buffer(s)/hop\n";
  }
  std::cout << "\n"
            << ast::to_paper_notation(*ast::build_ast(prog, design.nest))
            << "\n";

  Env sizes{{"n", Rational(6)}};
  for (const Symbol& s : design.nest.sizes()) {
    if (!sizes.contains(s.name())) sizes[s.name()] = Rational(3);
  }
  IndexedStore store = make_initial_store(
      design.nest, sizes, [](const std::string& var, const IntVec& p) {
        return static_cast<Value>((var[0] % 5) + p[0] % 7);
      });
  IndexedStore check = store;
  run_sequential(design.nest, sizes, check);
  RunMetrics metrics = execute(prog, design.nest, sizes, store);
  std::cout << "run: " << metrics.to_string() << "\n";

  bool ok = true;
  for (const Stream& s : design.nest.streams()) {
    if (store.elements(s.name()) != check.elements(s.name())) ok = false;
  }
  std::cout << (ok ? "matches sequential ground truth\n"
                   : "MISMATCH against sequential ground truth\n");
  return ok ? 0 : 1;
}
